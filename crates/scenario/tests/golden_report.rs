//! Golden-report snapshots: the committed JSON under `tests/golden/` is
//! the contract for every preset's report — admission outcomes, QoS
//! percentiles, cell accounting, all of it, byte for byte.
//!
//! Goldens store the *canonical* rendering
//! ([`ScenarioReport::to_json_canonical`]): everything except the
//! per-shard execution block, which legitimately depends on `--shards`.
//! That makes one committed file the contract for every shard count —
//! the CI gauntlet diffs `--shards 1` against `--shards 4` against
//! these same bytes.
//!
//! Any intentional change to the report format, the presets, the broker
//! policy or the engine's event ordering shows up here as a diff, which
//! is the point: reviewers see exactly what moved. To regenerate after
//! such a change:
//!
//! ```console
//! $ BLESS=1 cargo test -p pegasus-scenario --test golden_report
//! $ git diff crates/scenario/tests/golden/   # review what changed
//! ```
//!
//! Heavy presets are snapshotted at a CI-sized session scale (encoded
//! in the golden file's name, e.g. `metropolis-1k@0.05.json`) so the
//! debug-profile suite stays fast; the full-scale renditions are
//! exercised by `scripts/run_scenarios.sh --full`.

use std::fs;
use std::path::PathBuf;

use pegasus_scenario::{presets, run};

fn check(preset: &str, scale: f64) {
    let mut spec = presets::by_name(preset).expect("known preset");
    let mut name = format!("{preset}.json");
    if scale != 1.0 {
        spec = spec.scale_sessions(scale);
        name = format!("{preset}@{scale}.json");
    }
    let got = run(&spec).to_json_canonical();
    let path: PathBuf = [env!("CARGO_MANIFEST_DIR"), "tests", "golden", &name]
        .iter()
        .collect();
    if std::env::var_os("BLESS").is_some() {
        fs::write(&path, &got).expect("write golden");
        return;
    }
    let want = fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden {} ({e}); regenerate with \
             BLESS=1 cargo test -p pegasus-scenario --test golden_report",
            path.display()
        )
    });
    assert!(
        got == want,
        "{preset} (scale {scale}) drifted from its golden report.\n\
         If the change is intentional, regenerate with\n\
         BLESS=1 cargo test -p pegasus-scenario --test golden_report\n\
         and review the diff.\n--- golden ---\n{want}\n--- got ---\n{got}"
    );
}

#[test]
fn golden_smoke() {
    check("smoke", 1.0);
}

#[test]
fn golden_videophone_wall() {
    check("videophone-wall", 0.25);
}

#[test]
fn golden_vod_rack() {
    check("vod-rack", 0.25);
}

#[test]
fn golden_tv_studio() {
    check("tv-studio", 0.5);
}

#[test]
fn golden_nemesis_storm() {
    check("nemesis-storm", 0.5);
}

#[test]
fn golden_metropolis_1k() {
    check("metropolis-1k", 0.05);
}

#[test]
fn golden_metropolis_100k() {
    check("metropolis-100k", 0.001);
}

#[test]
fn golden_overload_2x() {
    check("overload-2x", 1.0);
}

#[test]
fn golden_flash_crowd() {
    check("flash-crowd", 1.0);
}

#[test]
fn golden_sustained_3x() {
    check("sustained-3x", 1.0);
}

#[test]
fn golden_storm_backpressure() {
    check("storm-backpressure", 0.5);
}

#[test]
fn golden_vod_city() {
    check("vod-city", 0.5);
}
