//! An output-queued ATM cell switch in the style of Fairisle.
//!
//! The paper's workstations hang cameras, displays and audio nodes off a
//! local ATM switch that "is under control of the workstation" (§2).
//! A [`Switch`] here forwards cells by looking up the (input port, VCI)
//! pair in a translation table, rewriting the VCI, and queueing the cell
//! on the output port's link after a fixed fabric latency. Output queues
//! have finite capacity; overflowing cells are dropped (counted), with
//! CLP-marked cells dropped first in spirit by being subject to a lower
//! threshold.

use std::cell::RefCell;
use std::collections::{HashMap, VecDeque};
use std::rc::Rc;

use pegasus_sim::time::Ns;
use pegasus_sim::{SharedHandler, Simulator};

use crate::cell::{Cell, Vci};
use crate::link::{CellSink, Link, SinkRef};

/// A routing-table entry: where a cell goes and what VCI it gets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Route {
    /// Output port index.
    pub out_port: usize,
    /// VCI stamped on the cell for the next hop.
    pub out_vci: Vci,
}

/// Forwarding statistics kept by each switch.
#[derive(Debug, Default, Clone)]
pub struct SwitchStats {
    /// Cells successfully forwarded.
    pub switched: u64,
    /// Cells dropped because no route matched.
    pub unroutable: u64,
    /// Cells dropped because the output queue was full.
    pub overflowed: u64,
    /// Deepest output backlog observed (in cells, including the cell
    /// being accepted) — the high-water mark scenario reports publish.
    pub peak_queue_cells: u64,
    /// Deepest backlog since the last [`SwitchStats::take_epoch_peak`]
    /// — the resettable gauge the congestion control loop samples to
    /// judge headroom, distinct from the run-long high-water mark.
    pub epoch_peak_queue_cells: u64,
}

impl SwitchStats {
    /// The deepest backlog this epoch; resets the epoch gauge.
    pub fn take_epoch_peak(&mut self) -> u64 {
        std::mem::take(&mut self.epoch_peak_queue_cells)
    }
}

/// An output-queued cell switch.
pub struct Switch {
    name: String,
    fabric_latency: Ns,
    outputs: Vec<Option<Link>>,
    routes: HashMap<(usize, Vci), Route>,
    /// Maximum backlog per output, in cells, before tail drop.
    pub queue_capacity: u64,
    /// Forwarding statistics.
    pub stats: SwitchStats,
    /// Overflow drops per *incoming* VCI (the label the cell still
    /// carries at the drop point, before translation). Globally unique
    /// VCIs make this attributable to one circuit; the control plane
    /// drains it to reclaim credits and attribute admitted-session loss.
    dropped_by_vci: HashMap<Vci, u64>,
    next_vci: Vci,
}

impl Switch {
    /// Creates a switch with `ports` ports and the given per-cell fabric
    /// latency, wrapped for sharing.
    pub fn shared(name: &str, ports: usize, fabric_latency: Ns) -> Rc<RefCell<Switch>> {
        Rc::new(RefCell::new(Switch {
            name: name.to_string(),
            fabric_latency,
            outputs: (0..ports).map(|_| None).collect(),
            routes: HashMap::new(),
            queue_capacity: 1024,
            stats: SwitchStats::default(),
            dropped_by_vci: HashMap::new(),
            next_vci: 32, // low VCIs reserved for signalling, as on real ATM
        }))
    }

    /// The switch's human-readable name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of ports.
    pub fn ports(&self) -> usize {
        self.outputs.len()
    }

    /// Attaches the transmit link of output `port`.
    ///
    /// # Panics
    ///
    /// Panics if `port` is out of range.
    pub fn attach_output(&mut self, port: usize, link: Link) {
        self.outputs[port] = Some(link);
    }

    /// Grows the switch to at least `ports` ports (new ports start
    /// unwired). Programmatic topology builders size switches to the
    /// scenario rather than a fixed port count.
    pub fn grow_ports(&mut self, ports: usize) {
        while self.outputs.len() < ports {
            self.outputs.push(None);
        }
    }

    /// Allocates a fresh VCI, unique within this switch.
    pub fn alloc_vci(&mut self) -> Vci {
        let v = self.next_vci;
        self.next_vci = self.next_vci.checked_add(1).expect("VCI space exhausted");
        v
    }

    /// Installs a translation-table entry.
    pub fn add_route(&mut self, in_port: usize, in_vci: Vci, out_port: usize, out_vci: Vci) {
        self.routes
            .insert((in_port, in_vci), Route { out_port, out_vci });
    }

    /// Removes a translation-table entry; returns `true` if it existed.
    pub fn remove_route(&mut self, in_port: usize, in_vci: Vci) -> bool {
        self.routes.remove(&(in_port, in_vci)).is_some()
    }

    /// Wipes the whole translation table — a dead switch forwards
    /// nothing; everything arriving afterwards counts as unroutable.
    pub fn clear_routes(&mut self) {
        self.routes.clear();
    }

    /// The wired output links, in port order (line cards of this
    /// switch). Fault injection uses this to cut or inspect lines.
    pub fn output_links_mut(&mut self) -> impl Iterator<Item = &mut Link> {
        self.outputs.iter_mut().filter_map(|l| l.as_mut())
    }

    /// The output link at `port`, if wired — targeted access for the
    /// sharded executor to set export buffers on, or inject into, a
    /// specific trunk line.
    pub fn output_mut(&mut self, port: usize) -> Option<&mut Link> {
        self.outputs.get_mut(port).and_then(|l| l.as_mut())
    }

    /// Cells this switch's output lines lost to outage windows.
    pub fn cells_dropped_outage(&self) -> u64 {
        self.outputs
            .iter()
            .filter_map(|l| l.as_ref())
            .map(Link::cells_dropped)
            .sum()
    }

    /// Overflow drops per incoming VCI since the last call, drained and
    /// sorted by VCI so callers iterate deterministically.
    pub fn take_dropped_by_vci(&mut self) -> Vec<(Vci, u64)> {
        let mut drops: Vec<(Vci, u64)> = self.dropped_by_vci.drain().collect();
        drops.sort_unstable();
        drops
    }

    /// Looks up the route for a cell arriving on `in_port` with `in_vci`.
    pub fn route_for(&self, in_port: usize, in_vci: Vci) -> Option<Route> {
        self.routes.get(&(in_port, in_vci)).copied()
    }

    /// Forwards a cell that has crossed the fabric from `in_port`.
    fn forward(&mut self, sim: &mut Simulator, in_port: usize, mut cell: Cell) {
        let Some(route) = self.route_for(in_port, cell.vci()) else {
            self.stats.unroutable += 1;
            return;
        };
        let Some(link) = self
            .outputs
            .get_mut(route.out_port)
            .and_then(|l| l.as_mut())
        else {
            self.stats.unroutable += 1;
            return;
        };
        let backlog_cells = link.backlog(sim.now()) / link.cell_time().max(1);
        if backlog_cells >= self.queue_capacity {
            self.stats.overflowed += 1;
            // The cell still carries its incoming label here (the VCI
            // rewrite below never ran), so the drop attributes cleanly.
            *self.dropped_by_vci.entry(cell.vci()).or_insert(0) += 1;
            return;
        }
        cell.set_vci(route.out_vci);
        link.send(sim, cell);
        self.stats.switched += 1;
        self.stats.peak_queue_cells = self.stats.peak_queue_cells.max(backlog_cells + 1);
        self.stats.epoch_peak_queue_cells =
            self.stats.epoch_peak_queue_cells.max(backlog_cells + 1);
    }
}

/// An input-port adapter: the [`CellSink`] a neighbour's link feeds.
///
/// Cells crossing the fabric wait in a FIFO shared with a single
/// [`SharedHandler`], so the per-cell fabric hop costs one small heap
/// entry and no allocations.
struct InPort {
    switch: Rc<RefCell<Switch>>,
    port: usize,
    crossing: Rc<RefCell<VecDeque<Cell>>>,
    handler: SharedHandler,
}

impl CellSink for InPort {
    fn deliver(&mut self, sim: &mut Simulator, cell: Cell) {
        let latency = self.switch.borrow().fabric_latency;
        if latency == 0 {
            self.switch.borrow_mut().forward(sim, self.port, cell);
        } else {
            self.crossing.borrow_mut().push_back(cell);
            sim.schedule_shared_in(latency, self.handler.clone());
        }
    }
}

/// Creates the [`SinkRef`] for input `port` of `switch`, to be used as the
/// sink of whatever link feeds that port.
pub fn input_port(switch: &Rc<RefCell<Switch>>, port: usize) -> SinkRef {
    assert!(port < switch.borrow().ports(), "input port out of range");
    let crossing: Rc<RefCell<VecDeque<Cell>>> = Rc::new(RefCell::new(VecDeque::new()));
    let handler: SharedHandler = {
        let switch = switch.clone();
        let crossing = crossing.clone();
        Rc::new(RefCell::new(move |sim: &mut Simulator| -> Option<Ns> {
            let cell = crossing
                .borrow_mut()
                .pop_front()
                .expect("one crossing cell per fabric event");
            switch.borrow_mut().forward(sim, port, cell);
            None
        }))
    };
    Rc::new(RefCell::new(InPort {
        switch: switch.clone(),
        port,
        crossing,
        handler,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::CaptureSink;

    const RATE: u64 = 100_000_000;

    fn one_switch_setup(
        fabric_latency: Ns,
    ) -> (Rc<RefCell<Switch>>, SinkRef, Rc<RefCell<CaptureSink>>) {
        let sw = Switch::shared("t", 4, fabric_latency);
        let out = CaptureSink::shared();
        sw.borrow_mut()
            .attach_output(1, Link::new(RATE, 0, out.clone()));
        let input = input_port(&sw, 0);
        (sw, input, out)
    }

    #[test]
    fn routes_and_rewrites_vci() {
        let (sw, input, out) = one_switch_setup(1_000);
        sw.borrow_mut().add_route(0, 40, 1, 77);
        let mut sim = Simulator::new();
        input.borrow_mut().deliver(&mut sim, Cell::new(40));
        sim.run();
        let arr = &out.borrow().arrivals;
        assert_eq!(arr.len(), 1);
        assert_eq!(arr[0].1.vci(), 77);
        // Fabric latency 1 µs + serialization 4.24 µs.
        assert_eq!(arr[0].0, 1_000 + 4_240);
        assert_eq!(sw.borrow().stats.switched, 1);
    }

    #[test]
    fn unroutable_cells_counted_and_dropped() {
        let (sw, input, out) = one_switch_setup(0);
        let mut sim = Simulator::new();
        input.borrow_mut().deliver(&mut sim, Cell::new(999));
        sim.run();
        assert!(out.borrow().arrivals.is_empty());
        assert_eq!(sw.borrow().stats.unroutable, 1);
    }

    #[test]
    fn queue_overflow_drops() {
        let (sw, input, out) = one_switch_setup(0);
        sw.borrow_mut().add_route(0, 5, 1, 5);
        sw.borrow_mut().queue_capacity = 4;
        let mut sim = Simulator::new();
        // Burst 10 cells at t=0: capacity 4 means backlog caps out.
        for _ in 0..10 {
            input.borrow_mut().deliver(&mut sim, Cell::new(5));
        }
        sim.run();
        let delivered = out.borrow().arrivals.len() as u64;
        let st = sw.borrow().stats.clone();
        assert_eq!(delivered + st.overflowed, 10);
        assert!(st.overflowed > 0, "expected drops");
        assert_eq!(st.peak_queue_cells, 4, "high-water mark is the capacity");
    }

    #[test]
    fn peak_queue_depth_tracks_bursts() {
        let (sw, input, _out) = one_switch_setup(0);
        sw.borrow_mut().add_route(0, 5, 1, 5);
        let mut sim = Simulator::new();
        for _ in 0..6 {
            input.borrow_mut().deliver(&mut sim, Cell::new(5));
        }
        sim.run();
        assert_eq!(sw.borrow().stats.peak_queue_cells, 6);
        // A later, smaller burst does not lower the mark.
        for _ in 0..2 {
            input.borrow_mut().deliver(&mut sim, Cell::new(5));
        }
        sim.run();
        assert_eq!(sw.borrow().stats.peak_queue_cells, 6);
    }

    #[test]
    fn grow_ports_extends_unwired() {
        let sw = Switch::shared("g", 2, 0);
        sw.borrow_mut().grow_ports(5);
        assert_eq!(sw.borrow().ports(), 5);
        sw.borrow_mut().grow_ports(3); // never shrinks
        assert_eq!(sw.borrow().ports(), 5);
        let out = CaptureSink::shared();
        sw.borrow_mut().attach_output(4, Link::new(RATE, 0, out));
    }

    #[test]
    fn two_flows_interleave_fifo() {
        let (sw, input, out) = one_switch_setup(0);
        sw.borrow_mut().add_route(0, 1, 1, 101);
        sw.borrow_mut().add_route(0, 2, 1, 102);
        let mut sim = Simulator::new();
        for i in 0..6u16 {
            input.borrow_mut().deliver(&mut sim, Cell::new(1 + (i % 2)));
        }
        sim.run();
        let vcis: Vec<Vci> = out.borrow().arrivals.iter().map(|(_, c)| c.vci()).collect();
        assert_eq!(vcis, vec![101, 102, 101, 102, 101, 102]);
    }

    #[test]
    fn remove_route_stops_forwarding() {
        let (sw, input, out) = one_switch_setup(0);
        sw.borrow_mut().add_route(0, 7, 1, 7);
        let mut sim = Simulator::new();
        input.borrow_mut().deliver(&mut sim, Cell::new(7));
        sim.run();
        assert!(sw.borrow_mut().remove_route(0, 7));
        assert!(!sw.borrow_mut().remove_route(0, 7));
        input.borrow_mut().deliver(&mut sim, Cell::new(7));
        sim.run();
        assert_eq!(out.borrow().arrivals.len(), 1);
        assert_eq!(sw.borrow().stats.unroutable, 1);
    }

    #[test]
    fn alloc_vci_is_unique_and_above_signalling_range() {
        let sw = Switch::shared("t", 2, 0);
        let a = sw.borrow_mut().alloc_vci();
        let b = sw.borrow_mut().alloc_vci();
        assert!(a >= 32);
        assert_ne!(a, b);
    }

    #[test]
    fn two_hop_path() {
        let sw1 = Switch::shared("sw1", 2, 500);
        let sw2 = Switch::shared("sw2", 2, 500);
        let out = CaptureSink::shared();
        // sw1 port1 --link--> sw2 port0; sw2 port1 --link--> capture.
        sw1.borrow_mut()
            .attach_output(1, Link::new(RATE, 100, input_port(&sw2, 0)));
        sw2.borrow_mut()
            .attach_output(1, Link::new(RATE, 100, out.clone()));
        sw1.borrow_mut().add_route(0, 50, 1, 60);
        sw2.borrow_mut().add_route(0, 60, 1, 70);
        let input = input_port(&sw1, 0);
        let mut sim = Simulator::new();
        input.borrow_mut().deliver(&mut sim, Cell::new(50));
        sim.run();
        let arr = &out.borrow().arrivals;
        assert_eq!(arr.len(), 1);
        assert_eq!(arr[0].1.vci(), 70);
        // 2 × (fabric 500 + tx 4240 + prop 100) = 9680.
        assert_eq!(arr[0].0, 9_680);
    }
}
