//! The ATM cell.
//!
//! An ATM cell is 53 bytes: a 5-byte header and a 48-byte payload. The
//! header carries (for UNI cells) a 4-bit generic flow control field, an
//! 8-bit virtual path identifier, a 16-bit virtual circuit identifier, a
//! 3-bit payload-type indicator, the cell-loss-priority bit, and a header
//! checksum octet (HEC). The payload-type indicator's least significant
//! bit is the AAL-user bit that AAL5 uses to mark the final cell of a
//! frame.

/// Size of a full ATM cell in bytes.
pub const CELL_SIZE: usize = 53;
/// Size of the cell payload in bytes.
pub const PAYLOAD_SIZE: usize = 48;
/// Size of the cell header in bytes.
pub const HEADER_SIZE: usize = 5;

/// A virtual circuit identifier (16 bits on the wire).
pub type Vci = u16;

/// CRC-8 polynomial of the header checksum: `x^8 + x^2 + x + 1`.
const HEC_POLY: u8 = 0x07;

/// Builds the 256-entry CRC-8 lookup table at compile time: entry `i` is
/// the CRC-8 of the single byte `i`.
const fn build_hec_table() -> [u8; 256] {
    let mut table = [0u8; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u8;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 0x80 != 0 {
                (crc << 1) ^ HEC_POLY
            } else {
                crc << 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static HEC_TABLE: [u8; 256] = build_hec_table();

/// One ATM cell.
///
/// Cells are `Clone` and small; the simulator copies them freely between
/// queues the same way hardware copies them between port buffers.
///
/// # Examples
///
/// ```
/// use pegasus_atm::cell::Cell;
///
/// let mut cell = Cell::new(42);
/// cell.set_last(true);
/// let bytes = cell.to_bytes();
/// let back = Cell::from_bytes(&bytes).unwrap();
/// assert_eq!(back.vci(), 42);
/// assert!(back.is_last());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cell {
    gfc: u8,
    vpi: u8,
    vci: Vci,
    pti: u8,
    clp: bool,
    /// The 48-byte payload.
    pub payload: [u8; PAYLOAD_SIZE],
}

impl Cell {
    /// Creates a zero-payload cell on virtual circuit `vci`.
    pub fn new(vci: Vci) -> Self {
        Cell {
            gfc: 0,
            vpi: 0,
            vci,
            pti: 0,
            clp: false,
            payload: [0; PAYLOAD_SIZE],
        }
    }

    /// Creates a cell on `vci` with the given payload bytes.
    ///
    /// # Panics
    ///
    /// Panics if `data` is longer than [`PAYLOAD_SIZE`]; shorter data is
    /// zero-padded, matching what AAL5 segmentation produces.
    pub fn with_payload(vci: Vci, data: &[u8]) -> Self {
        assert!(
            data.len() <= PAYLOAD_SIZE,
            "payload too large: {}",
            data.len()
        );
        let mut cell = Cell::new(vci);
        cell.payload[..data.len()].copy_from_slice(data);
        cell
    }

    /// The cell's virtual circuit identifier.
    pub fn vci(&self) -> Vci {
        self.vci
    }

    /// Rewrites the VCI (what a switch does at each hop).
    pub fn set_vci(&mut self, vci: Vci) {
        self.vci = vci;
    }

    /// The virtual path identifier.
    pub fn vpi(&self) -> u8 {
        self.vpi
    }

    /// Sets the virtual path identifier.
    pub fn set_vpi(&mut self, vpi: u8) {
        self.vpi = vpi;
    }

    /// The raw 3-bit payload-type indicator.
    pub fn pti(&self) -> u8 {
        self.pti
    }

    /// The cell-loss-priority bit.
    pub fn clp(&self) -> bool {
        self.clp
    }

    /// Marks the cell as discard-eligible.
    pub fn set_clp(&mut self, clp: bool) {
        self.clp = clp;
    }

    /// True when the AAL-user bit (PTI bit 0) marks this as the last cell
    /// of an AAL5 frame.
    pub fn is_last(&self) -> bool {
        self.pti & 0b001 != 0
    }

    /// Sets or clears the AAL5 end-of-frame marker.
    pub fn set_last(&mut self, last: bool) {
        if last {
            self.pti |= 0b001;
        } else {
            self.pti &= !0b001;
        }
    }

    /// Computes the HEC octet over the first four header bytes.
    ///
    /// The HEC is CRC-8 with polynomial `x^8 + x^2 + x + 1` (0x07), with
    /// the ITU-mandated 0x55 coset added. One lookup per header byte in
    /// a compile-time-built 256-entry table, so header generation and
    /// verification stay off the bit-loop.
    pub fn hec(header: &[u8; 4]) -> u8 {
        let mut crc: u8 = 0;
        for &b in header {
            crc = HEC_TABLE[(crc ^ b) as usize];
        }
        crc ^ 0x55
    }

    /// Serializes the cell to its 53-byte wire format.
    pub fn to_bytes(&self) -> [u8; CELL_SIZE] {
        let mut out = [0u8; CELL_SIZE];
        // UNI header layout:
        //  byte0: GFC[3:0] VPI[7:4]
        //  byte1: VPI[3:0] VCI[15:12]
        //  byte2: VCI[11:4]
        //  byte3: VCI[3:0] PTI[2:0] CLP
        //  byte4: HEC
        out[0] = (self.gfc << 4) | (self.vpi >> 4);
        out[1] = (self.vpi << 4) | ((self.vci >> 12) as u8 & 0x0F);
        out[2] = (self.vci >> 4) as u8;
        out[3] = ((self.vci as u8 & 0x0F) << 4) | (self.pti << 1) | self.clp as u8;
        let hdr4 = [out[0], out[1], out[2], out[3]];
        out[4] = Self::hec(&hdr4);
        out[HEADER_SIZE..].copy_from_slice(&self.payload);
        out
    }

    /// Parses a cell from its wire format, verifying the HEC.
    ///
    /// Returns `None` when the buffer is not exactly [`CELL_SIZE`] bytes
    /// or the header checksum fails.
    pub fn from_bytes(bytes: &[u8]) -> Option<Self> {
        if bytes.len() != CELL_SIZE {
            return None;
        }
        let hdr4 = [bytes[0], bytes[1], bytes[2], bytes[3]];
        if Self::hec(&hdr4) != bytes[4] {
            return None;
        }
        let gfc = bytes[0] >> 4;
        let vpi = (bytes[0] << 4) | (bytes[1] >> 4);
        let vci = (((bytes[1] & 0x0F) as u16) << 12)
            | ((bytes[2] as u16) << 4)
            | ((bytes[3] >> 4) as u16);
        let pti = (bytes[3] >> 1) & 0b111;
        let clp = bytes[3] & 1 != 0;
        let mut payload = [0u8; PAYLOAD_SIZE];
        payload.copy_from_slice(&bytes[HEADER_SIZE..]);
        Some(Cell {
            gfc,
            vpi,
            vci,
            pti,
            clp,
            payload,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_plain() {
        let mut c = Cell::with_payload(0x1234, b"hello");
        c.set_vpi(0xAB);
        c.set_clp(true);
        c.set_last(true);
        let bytes = c.to_bytes();
        let back = Cell::from_bytes(&bytes).expect("valid cell");
        assert_eq!(back, c);
        assert_eq!(back.vci(), 0x1234);
        assert_eq!(back.vpi(), 0xAB);
        assert!(back.clp());
        assert!(back.is_last());
        assert_eq!(&back.payload[..5], b"hello");
    }

    #[test]
    fn hec_detects_header_corruption() {
        let c = Cell::new(99);
        let mut bytes = c.to_bytes();
        bytes[2] ^= 0x40;
        assert!(Cell::from_bytes(&bytes).is_none());
    }

    #[test]
    fn wrong_length_rejected() {
        assert!(Cell::from_bytes(&[0u8; 52]).is_none());
        assert!(Cell::from_bytes(&[0u8; 54]).is_none());
    }

    #[test]
    fn last_bit_toggles() {
        let mut c = Cell::new(1);
        assert!(!c.is_last());
        c.set_last(true);
        assert!(c.is_last());
        c.set_last(false);
        assert!(!c.is_last());
    }

    #[test]
    fn vci_full_range_roundtrips() {
        for vci in [0u16, 1, 0x00FF, 0x0FFF, 0x8000, 0xFFFF] {
            let c = Cell::new(vci);
            let back = Cell::from_bytes(&c.to_bytes()).unwrap();
            assert_eq!(back.vci(), vci);
        }
    }

    #[test]
    fn payload_too_large_panics() {
        let data = [0u8; PAYLOAD_SIZE + 1];
        assert!(std::panic::catch_unwind(|| Cell::with_payload(1, &data)).is_err());
    }

    #[test]
    fn hec_known_coset() {
        // All-zero header: CRC-8 of zeros is 0, plus coset 0x55.
        assert_eq!(Cell::hec(&[0, 0, 0, 0]), 0x55);
    }

    /// The pre-table implementation, kept as the reference oracle.
    fn hec_bitwise(header: &[u8; 4]) -> u8 {
        let mut crc: u8 = 0;
        for &b in header {
            crc ^= b;
            for _ in 0..8 {
                if crc & 0x80 != 0 {
                    crc = (crc << 1) ^ 0x07;
                } else {
                    crc <<= 1;
                }
            }
        }
        crc ^ 0x55
    }

    #[test]
    fn hec_table_matches_bitwise_reference() {
        // Walk each byte position through all 256 values, plus a dense
        // pseudo-random sweep.
        for pos in 0..4 {
            for v in 0..=255u8 {
                let mut hdr = [0x12, 0x34, 0x56, 0x78];
                hdr[pos] = v;
                assert_eq!(Cell::hec(&hdr), hec_bitwise(&hdr), "pos={pos} v={v:#04x}");
            }
        }
        let mut x: u32 = 0xDEAD_BEEF;
        for _ in 0..10_000 {
            x = x.wrapping_mul(1_664_525).wrapping_add(1_013_904_223);
            let hdr = x.to_le_bytes();
            assert_eq!(Cell::hec(&hdr), hec_bitwise(&hdr));
        }
    }
}
