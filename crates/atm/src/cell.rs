//! The ATM cell.
//!
//! An ATM cell is 53 bytes: a 5-byte header and a 48-byte payload. The
//! header carries (for UNI cells) a 4-bit generic flow control field, an
//! 8-bit virtual path identifier, a 16-bit virtual circuit identifier, a
//! 3-bit payload-type indicator, the cell-loss-priority bit, and a header
//! checksum octet (HEC). The payload-type indicator's least significant
//! bit is the AAL-user bit that AAL5 uses to mark the final cell of a
//! frame.
//!
//! # Payload representation
//!
//! Inside the simulated single address space, a cell's 48 payload bytes
//! are either [`Payload::Inline`] (an owned array — signalling, audio,
//! anything built byte-by-byte) or [`Payload::View`] (a refcounted
//! [`FrameView`] into the arena buffer the frame was produced in).
//! Forwarding a view cell through links and switches bumps a refcount
//! instead of copying 48 bytes — the paper's no-copy data path. The two
//! representations are observationally identical: [`Cell::payload`]
//! always yields the same 48 bytes, equality and wire serialization
//! compare/emit bytes, and [`Cell::payload_mut`] transparently
//! materialises a view into an owned copy before mutation (the arena
//! buffer itself is immutable).

use pegasus_sim::arena::FrameView;

/// Size of a full ATM cell in bytes.
pub const CELL_SIZE: usize = 53;
/// Size of the cell payload in bytes.
pub const PAYLOAD_SIZE: usize = 48;
/// Size of the cell header in bytes.
pub const HEADER_SIZE: usize = 5;

/// A virtual circuit identifier (16 bits on the wire).
pub type Vci = u16;

/// CRC-8 polynomial of the header checksum: `x^8 + x^2 + x + 1`.
const HEC_POLY: u8 = 0x07;

/// Builds the 256-entry CRC-8 lookup table at compile time: entry `i` is
/// the CRC-8 of the single byte `i`.
const fn build_hec_table() -> [u8; 256] {
    let mut table = [0u8; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u8;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 0x80 != 0 {
                (crc << 1) ^ HEC_POLY
            } else {
                crc << 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static HEC_TABLE: [u8; 256] = build_hec_table();

/// The 48 payload bytes of a cell: owned, or a refcounted view into an
/// arena frame buffer. See the module docs for the equivalence contract.
#[derive(Debug, Clone)]
pub enum Payload {
    /// An owned copy of the bytes.
    Inline([u8; PAYLOAD_SIZE]),
    /// A zero-copy slice of an immutable arena buffer; always exactly
    /// [`PAYLOAD_SIZE`] bytes.
    View(FrameView),
}

/// One ATM cell.
///
/// Cells are `Clone` and small; the simulator moves them freely between
/// queues the same way hardware moves them between port buffers. Cloning
/// a view-payload cell bumps a refcount rather than copying the bytes.
///
/// # Examples
///
/// ```
/// use pegasus_atm::cell::Cell;
///
/// let mut cell = Cell::new(42);
/// cell.set_last(true);
/// let bytes = cell.to_bytes();
/// let back = Cell::from_bytes(&bytes).unwrap();
/// assert_eq!(back.vci(), 42);
/// assert!(back.is_last());
/// ```
#[derive(Debug, Clone)]
pub struct Cell {
    gfc: u8,
    vpi: u8,
    vci: Vci,
    pti: u8,
    clp: bool,
    payload: Payload,
}

impl PartialEq for Cell {
    fn eq(&self, other: &Self) -> bool {
        self.gfc == other.gfc
            && self.vpi == other.vpi
            && self.vci == other.vci
            && self.pti == other.pti
            && self.clp == other.clp
            && self.payload() == other.payload()
    }
}
impl Eq for Cell {}

impl Cell {
    /// Creates a zero-payload cell on virtual circuit `vci`.
    pub fn new(vci: Vci) -> Self {
        Cell {
            gfc: 0,
            vpi: 0,
            vci,
            pti: 0,
            clp: false,
            payload: Payload::Inline([0; PAYLOAD_SIZE]),
        }
    }

    /// Creates a cell on `vci` with the given payload bytes.
    ///
    /// # Panics
    ///
    /// Panics if `data` is longer than [`PAYLOAD_SIZE`]; shorter data is
    /// zero-padded, matching what AAL5 segmentation produces.
    pub fn with_payload(vci: Vci, data: &[u8]) -> Self {
        assert!(
            data.len() <= PAYLOAD_SIZE,
            "payload too large: {}",
            data.len()
        );
        let mut cell = Cell::new(vci);
        cell.payload_mut()[..data.len()].copy_from_slice(data);
        cell
    }

    /// Creates a cell on `vci` whose payload is a zero-copy view of an
    /// arena frame buffer.
    ///
    /// # Panics
    ///
    /// Panics unless `view` is exactly [`PAYLOAD_SIZE`] bytes — AAL5
    /// scatter-gather only takes full-cell slices of a frame; partial
    /// tails are synthesised inline.
    pub fn with_view(vci: Vci, view: FrameView) -> Self {
        assert_eq!(
            view.len(),
            PAYLOAD_SIZE,
            "view cells are exactly one payload"
        );
        Cell {
            gfc: 0,
            vpi: 0,
            vci,
            pti: 0,
            clp: false,
            payload: Payload::View(view),
        }
    }

    /// The 48 payload bytes, whichever representation carries them.
    pub fn payload(&self) -> &[u8] {
        match &self.payload {
            Payload::Inline(a) => a,
            Payload::View(v) => v,
        }
    }

    /// Mutable access to the payload. A view payload is first
    /// materialised into an owned copy (copy-on-write): arena buffers
    /// are immutable, so corruption and in-place edits only ever touch a
    /// private copy.
    pub fn payload_mut(&mut self) -> &mut [u8; PAYLOAD_SIZE] {
        if let Payload::View(v) = &self.payload {
            let mut owned = [0u8; PAYLOAD_SIZE];
            owned.copy_from_slice(v);
            self.payload = Payload::Inline(owned);
        }
        match &mut self.payload {
            Payload::Inline(a) => a,
            Payload::View(_) => unreachable!("view materialised above"),
        }
    }

    /// The payload view, when this cell rides the zero-copy lane.
    pub fn payload_view(&self) -> Option<&FrameView> {
        match &self.payload {
            Payload::View(v) => Some(v),
            Payload::Inline(_) => None,
        }
    }

    /// Whether the payload is a zero-copy arena view.
    pub fn is_view(&self) -> bool {
        matches!(self.payload, Payload::View(_))
    }

    /// The cell's virtual circuit identifier.
    pub fn vci(&self) -> Vci {
        self.vci
    }

    /// Rewrites the VCI (what a switch does at each hop).
    pub fn set_vci(&mut self, vci: Vci) {
        self.vci = vci;
    }

    /// The virtual path identifier.
    pub fn vpi(&self) -> u8 {
        self.vpi
    }

    /// Sets the virtual path identifier.
    pub fn set_vpi(&mut self, vpi: u8) {
        self.vpi = vpi;
    }

    /// The raw 3-bit payload-type indicator.
    pub fn pti(&self) -> u8 {
        self.pti
    }

    /// The cell-loss-priority bit.
    pub fn clp(&self) -> bool {
        self.clp
    }

    /// Marks the cell as discard-eligible.
    pub fn set_clp(&mut self, clp: bool) {
        self.clp = clp;
    }

    /// True when the AAL-user bit (PTI bit 0) marks this as the last cell
    /// of an AAL5 frame.
    pub fn is_last(&self) -> bool {
        self.pti & 0b001 != 0
    }

    /// Sets or clears the AAL5 end-of-frame marker.
    pub fn set_last(&mut self, last: bool) {
        if last {
            self.pti |= 0b001;
        } else {
            self.pti &= !0b001;
        }
    }

    /// Computes the HEC octet over the first four header bytes.
    ///
    /// The HEC is CRC-8 with polynomial `x^8 + x^2 + x + 1` (0x07), with
    /// the ITU-mandated 0x55 coset added. One lookup per header byte in
    /// a compile-time-built 256-entry table, so header generation and
    /// verification stay off the bit-loop.
    pub fn hec(header: &[u8; 4]) -> u8 {
        let mut crc: u8 = 0;
        for &b in header {
            crc = HEC_TABLE[(crc ^ b) as usize];
        }
        crc ^ 0x55
    }

    /// Serializes the cell to its 53-byte wire format.
    pub fn to_bytes(&self) -> [u8; CELL_SIZE] {
        let mut out = [0u8; CELL_SIZE];
        // UNI header layout:
        //  byte0: GFC[3:0] VPI[7:4]
        //  byte1: VPI[3:0] VCI[15:12]
        //  byte2: VCI[11:4]
        //  byte3: VCI[3:0] PTI[2:0] CLP
        //  byte4: HEC
        out[0] = (self.gfc << 4) | (self.vpi >> 4);
        out[1] = (self.vpi << 4) | ((self.vci >> 12) as u8 & 0x0F);
        out[2] = (self.vci >> 4) as u8;
        out[3] = ((self.vci as u8 & 0x0F) << 4) | (self.pti << 1) | self.clp as u8;
        let hdr4 = [out[0], out[1], out[2], out[3]];
        out[4] = Self::hec(&hdr4);
        out[HEADER_SIZE..].copy_from_slice(self.payload());
        out
    }

    /// Parses a cell from its wire format, verifying the HEC.
    ///
    /// Returns `None` when the buffer is not exactly [`CELL_SIZE`] bytes
    /// or the header checksum fails.
    pub fn from_bytes(bytes: &[u8]) -> Option<Self> {
        if bytes.len() != CELL_SIZE {
            return None;
        }
        let hdr4 = [bytes[0], bytes[1], bytes[2], bytes[3]];
        if Self::hec(&hdr4) != bytes[4] {
            return None;
        }
        let gfc = bytes[0] >> 4;
        let vpi = (bytes[0] << 4) | (bytes[1] >> 4);
        let vci = (((bytes[1] & 0x0F) as u16) << 12)
            | ((bytes[2] as u16) << 4)
            | ((bytes[3] >> 4) as u16);
        let pti = (bytes[3] >> 1) & 0b111;
        let clp = bytes[3] & 1 != 0;
        let mut payload = [0u8; PAYLOAD_SIZE];
        payload.copy_from_slice(&bytes[HEADER_SIZE..]);
        Some(Cell {
            gfc,
            vpi,
            vci,
            pti,
            clp,
            payload: Payload::Inline(payload),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_plain() {
        let mut c = Cell::with_payload(0x1234, b"hello");
        c.set_vpi(0xAB);
        c.set_clp(true);
        c.set_last(true);
        let bytes = c.to_bytes();
        let back = Cell::from_bytes(&bytes).expect("valid cell");
        assert_eq!(back, c);
        assert_eq!(back.vci(), 0x1234);
        assert_eq!(back.vpi(), 0xAB);
        assert!(back.clp());
        assert!(back.is_last());
        assert_eq!(&back.payload()[..5], b"hello");
    }

    #[test]
    fn view_payload_roundtrips_and_compares_equal_to_inline() {
        use pegasus_sim::arena::Arena;
        let arena = Arena::new();
        let mut bytes = vec![0u8; PAYLOAD_SIZE];
        bytes[..5].copy_from_slice(b"hello");
        let frame = arena.frame_from(&bytes);
        let mut vc = Cell::with_view(0x1234, frame.view_all());
        vc.set_last(true);
        let mut ic = Cell::with_payload(0x1234, b"hello");
        ic.set_last(true);
        assert!(vc.is_view());
        assert!(!ic.is_view());
        assert_eq!(vc, ic, "representation must not affect equality");
        assert_eq!(vc.to_bytes(), ic.to_bytes());
        // Wire parsing always lands inline.
        assert!(!Cell::from_bytes(&vc.to_bytes()).unwrap().is_view());
    }

    #[test]
    fn payload_mut_materialises_views_copy_on_write() {
        use pegasus_sim::arena::Arena;
        let arena = Arena::new();
        let frame = arena.frame_from(&[9u8; PAYLOAD_SIZE]);
        let mut cell = Cell::with_view(7, frame.view_all());
        let twin = cell.clone();
        cell.payload_mut()[0] = 0;
        assert!(!cell.is_view(), "mutation detaches from the arena");
        assert!(twin.is_view(), "the clone still rides the view");
        assert_eq!(frame[0], 9, "the arena buffer is untouched");
        assert_eq!(cell.payload()[0], 0);
    }

    #[test]
    #[should_panic(expected = "exactly one payload")]
    fn partial_views_rejected() {
        use pegasus_sim::arena::Arena;
        let arena = Arena::new();
        let frame = arena.frame_from(&[0u8; 10]);
        let _ = Cell::with_view(1, frame.view_all());
    }

    #[test]
    fn hec_detects_header_corruption() {
        let c = Cell::new(99);
        let mut bytes = c.to_bytes();
        bytes[2] ^= 0x40;
        assert!(Cell::from_bytes(&bytes).is_none());
    }

    #[test]
    fn wrong_length_rejected() {
        assert!(Cell::from_bytes(&[0u8; 52]).is_none());
        assert!(Cell::from_bytes(&[0u8; 54]).is_none());
    }

    #[test]
    fn last_bit_toggles() {
        let mut c = Cell::new(1);
        assert!(!c.is_last());
        c.set_last(true);
        assert!(c.is_last());
        c.set_last(false);
        assert!(!c.is_last());
    }

    #[test]
    fn vci_full_range_roundtrips() {
        for vci in [0u16, 1, 0x00FF, 0x0FFF, 0x8000, 0xFFFF] {
            let c = Cell::new(vci);
            let back = Cell::from_bytes(&c.to_bytes()).unwrap();
            assert_eq!(back.vci(), vci);
        }
    }

    #[test]
    fn payload_too_large_panics() {
        let data = [0u8; PAYLOAD_SIZE + 1];
        assert!(std::panic::catch_unwind(|| Cell::with_payload(1, &data)).is_err());
    }

    #[test]
    fn hec_known_coset() {
        // All-zero header: CRC-8 of zeros is 0, plus coset 0x55.
        assert_eq!(Cell::hec(&[0, 0, 0, 0]), 0x55);
    }

    /// The pre-table implementation, kept as the reference oracle.
    fn hec_bitwise(header: &[u8; 4]) -> u8 {
        let mut crc: u8 = 0;
        for &b in header {
            crc ^= b;
            for _ in 0..8 {
                if crc & 0x80 != 0 {
                    crc = (crc << 1) ^ 0x07;
                } else {
                    crc <<= 1;
                }
            }
        }
        crc ^ 0x55
    }

    #[test]
    fn hec_table_matches_bitwise_reference() {
        // Walk each byte position through all 256 values, plus a dense
        // pseudo-random sweep.
        for pos in 0..4 {
            for v in 0..=255u8 {
                let mut hdr = [0x12, 0x34, 0x56, 0x78];
                hdr[pos] = v;
                assert_eq!(Cell::hec(&hdr), hec_bitwise(&hdr), "pos={pos} v={v:#04x}");
            }
        }
        let mut x: u32 = 0xDEAD_BEEF;
        for _ in 0..10_000 {
            x = x.wrapping_mul(1_664_525).wrapping_add(1_013_904_223);
            let hdr = x.to_le_bytes();
            assert_eq!(Cell::hec(&hdr), hec_bitwise(&hdr));
        }
    }
}
