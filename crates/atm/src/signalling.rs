//! Connection signalling: QoS descriptors and admission control.
//!
//! "Both data and control virtual circuits are established through the
//! normal mechanism of ATM signalling" (§2.2), and the network "can
//! provide latency guarantees for interactive multimedia data" (§1).
//! Guarantees come from admission control: a guaranteed-class connection
//! reserves peak bandwidth on every link of its path, and is refused when
//! a link would be oversubscribed.

/// Traffic classes a connection may request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServiceClass {
    /// Guaranteed peak-rate service; admission-controlled.
    Guaranteed,
    /// Best-effort service; never reserved, may see queueing and loss.
    BestEffort,
}

/// The QoS descriptor carried in a connection-setup request.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QosSpec {
    /// Service class.
    pub class: ServiceClass,
    /// Peak cell-level bandwidth in bits per second (reserved when
    /// guaranteed).
    pub peak_bps: u64,
}

impl QosSpec {
    /// A guaranteed connection at `peak_bps`.
    pub fn guaranteed(peak_bps: u64) -> Self {
        QosSpec {
            class: ServiceClass::Guaranteed,
            peak_bps,
        }
    }

    /// A best-effort connection (advisory rate only).
    pub fn best_effort(peak_bps: u64) -> Self {
        QosSpec {
            class: ServiceClass::BestEffort,
            peak_bps,
        }
    }
}

/// Why a connection request was refused.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AdmissionError {
    /// A link on the path had insufficient unreserved bandwidth.
    InsufficientBandwidth {
        /// Human-readable identity of the saturated link.
        link: String,
        /// Bandwidth requested, bits/second.
        requested: u64,
        /// Bandwidth still unreserved, bits/second.
        available: u64,
    },
    /// No path exists between the endpoints.
    NoRoute,
    /// An endpoint identifier was unknown.
    UnknownEndpoint,
}

impl std::fmt::Display for AdmissionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AdmissionError::InsufficientBandwidth {
                link,
                requested,
                available,
            } => write!(
                f,
                "link {link}: requested {requested} bit/s but only {available} available"
            ),
            AdmissionError::NoRoute => write!(f, "no route between endpoints"),
            AdmissionError::UnknownEndpoint => write!(f, "unknown endpoint"),
        }
    }
}

impl std::error::Error for AdmissionError {}

/// Per-link bandwidth bookkeeping.
///
/// Reservations are capped at a configurable fraction of the raw line
/// rate, leaving headroom for signalling and best-effort traffic.
#[derive(Debug, Clone)]
pub struct AdmissionController {
    capacity_bps: u64,
    reservable_bps: u64,
    reserved_bps: u64,
}

impl AdmissionController {
    /// Creates a controller for a link of `capacity_bps`, allowing
    /// guaranteed reservations up to `reservable_fraction` of it.
    pub fn new(capacity_bps: u64, reservable_fraction: f64) -> Self {
        assert!((0.0..=1.0).contains(&reservable_fraction));
        AdmissionController {
            capacity_bps,
            reservable_bps: (capacity_bps as f64 * reservable_fraction) as u64,
            reserved_bps: 0,
        }
    }

    /// Raw line rate.
    pub fn capacity_bps(&self) -> u64 {
        self.capacity_bps
    }

    /// Bandwidth currently reserved by guaranteed connections.
    pub fn reserved_bps(&self) -> u64 {
        self.reserved_bps
    }

    /// Bandwidth still available to new guaranteed connections.
    pub fn available_bps(&self) -> u64 {
        self.reservable_bps - self.reserved_bps
    }

    /// Attempts to reserve `bps`; on failure reports what was available.
    pub fn reserve(&mut self, bps: u64, link_name: &str) -> Result<(), AdmissionError> {
        if bps > self.available_bps() {
            return Err(AdmissionError::InsufficientBandwidth {
                link: link_name.to_string(),
                requested: bps,
                available: self.available_bps(),
            });
        }
        self.reserved_bps += bps;
        Ok(())
    }

    /// Releases a previous reservation.
    pub fn release(&mut self, bps: u64) {
        self.reserved_bps = self.reserved_bps.saturating_sub(bps);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reserve_until_full() {
        let mut ac = AdmissionController::new(100_000_000, 0.9);
        assert_eq!(ac.available_bps(), 90_000_000);
        ac.reserve(50_000_000, "l").unwrap();
        ac.reserve(40_000_000, "l").unwrap();
        let err = ac.reserve(1, "l").unwrap_err();
        match err {
            AdmissionError::InsufficientBandwidth {
                requested,
                available,
                ..
            } => {
                assert_eq!(requested, 1);
                assert_eq!(available, 0);
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn release_returns_capacity() {
        let mut ac = AdmissionController::new(10_000, 1.0);
        ac.reserve(10_000, "l").unwrap();
        ac.release(4_000);
        assert_eq!(ac.available_bps(), 4_000);
        ac.reserve(4_000, "l").unwrap();
    }

    #[test]
    fn release_saturates() {
        let mut ac = AdmissionController::new(10_000, 1.0);
        ac.release(99_999);
        assert_eq!(ac.reserved_bps(), 0);
        assert_eq!(ac.available_bps(), 10_000);
    }

    #[test]
    fn qos_constructors() {
        let g = QosSpec::guaranteed(1_000_000);
        assert_eq!(g.class, ServiceClass::Guaranteed);
        let b = QosSpec::best_effort(0);
        assert_eq!(b.class, ServiceClass::BestEffort);
    }

    #[test]
    fn error_display() {
        let e = AdmissionError::InsufficientBandwidth {
            link: "sw0:1".into(),
            requested: 10,
            available: 5,
        };
        let s = e.to_string();
        assert!(s.contains("sw0:1") && s.contains("10") && s.contains('5'));
        assert_eq!(
            AdmissionError::NoRoute.to_string(),
            "no route between endpoints"
        );
    }
}
