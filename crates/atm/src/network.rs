//! Topology construction and end-to-end virtual circuits.
//!
//! A [`Network`] owns a set of switches, the links between them, and the
//! endpoints (cameras, displays, audio nodes, host interfaces, file
//! servers) attached to switch ports. [`Network::open_vc`] performs what
//! ATM signalling did in Pegasus: route the connection, admission-control
//! every hop for guaranteed traffic, allocate VCIs, and install the
//! translation-table entries.

use std::cell::RefCell;
use std::collections::{HashMap, VecDeque};
use std::rc::Rc;

use pegasus_sim::time::Ns;
use pegasus_sim::Lane;

use crate::cell::Vci;
use crate::link::{Link, SinkRef};
use crate::signalling::{AdmissionController, AdmissionError, QosSpec, ServiceClass};
use crate::switch::{input_port, Switch};

/// Identifier of a switch within a [`Network`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SwitchId(pub usize);

/// Identifier of an endpoint within a [`Network`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EndpointId(pub usize);

/// Physical parameters of a link.
#[derive(Debug, Clone, Copy)]
pub struct LinkConfig {
    /// Line rate in bits per second.
    pub rate_bps: u64,
    /// One-way propagation delay.
    pub prop_delay: Ns,
}

impl LinkConfig {
    /// The 100 Mbit/s links the Pegasus testbed ran ("our ATM network
    /// runs only at a mere 100 megabits per second", §5).
    pub fn pegasus_default() -> Self {
        LinkConfig {
            rate_bps: 100_000_000,
            prop_delay: 1_000, // 1 µs: a building-scale fibre run
        }
    }
}

/// The wiring pattern of a programmatically built switch fabric.
///
/// [`Network::build_topology`] turns a shape plus a switch count into a
/// wired fabric; scenario specs pick the shape declaratively instead of
/// hand-connecting switches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TopologyShape {
    /// Switch 0 is the hub; every other switch uplinks to it. One
    /// switch degenerates to a single backbone.
    Star,
    /// Each switch links to its successor, the last back to the first.
    /// (Two switches get a single link, not a doubled one.)
    Ring,
    /// Every pair of switches is directly linked — maximum path
    /// diversity, `n·(n−1)/2` links.
    FullMesh,
}

/// A live virtual circuit, as returned by [`Network::open_vc`].
#[derive(Debug, Clone)]
pub struct VcHandle {
    /// Connection identifier (unique per network).
    pub id: u64,
    /// The VCI the source endpoint must stamp on outgoing cells.
    pub src_vci: Vci,
    /// The VCI cells carry when they reach the destination endpoint.
    pub dst_vci: Vci,
    /// The QoS granted.
    pub qos: QosSpec,
    /// Route entries (switch index, in port, in VCI) for teardown.
    route: Vec<(usize, usize, Vci)>,
    /// Reservations (admission-controller key, bits/second) for teardown.
    reservations: Vec<(ReservationKey, u64)>,
    /// Source endpoint.
    pub src: EndpointId,
    /// Destination endpoint.
    pub dst: EndpointId,
}

impl VcHandle {
    /// Whether this circuit's installed route passes through `sw` —
    /// the question signalling asks when a switch dies and survivors
    /// must be re-routed.
    pub fn crosses_switch(&self, sw: SwitchId) -> bool {
        self.route.iter().any(|&(s, _, _)| s == sw.0)
    }

    /// Every VCI this circuit's cells carry anywhere on the path: the
    /// incoming label at each hop plus the final delivery label. VCIs
    /// are allocated from one network-wide counter, so any of these
    /// labels identifies exactly this circuit — per-VCI drop counters
    /// at switches and links attribute back through this set.
    pub fn vcis(&self) -> impl Iterator<Item = Vci> + '_ {
        self.route
            .iter()
            .map(|&(_, _, v)| v)
            .chain(std::iter::once(self.dst_vci))
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum ReservationKey {
    /// Endpoint transmit direction (device → switch).
    EndpointTx(usize),
    /// A switch output port (switch → neighbour or switch → endpoint).
    SwitchOut(usize, usize),
}

struct EndpointInfo {
    switch: usize,
    port: usize,
    tx: Rc<RefCell<Link>>,
}

/// One direction of an inter-switch trunk link, as recorded at wiring
/// time. Trunks are the only links that cross region-shard boundaries,
/// so each direction gets its own scheduling lane (assigned in wiring
/// order, starting at 1; lane 0 stays the shared default). The lane
/// makes every trunk's delivery sequence independent of what the rest
/// of the city schedules — the property that lets a sharded run replay
/// the exact 1-shard event order on the cut.
#[derive(Debug, Clone, Copy)]
pub struct TrunkDir {
    /// Transmitting switch index.
    pub from: usize,
    /// Output port on the transmitting switch.
    pub port: usize,
    /// Receiving switch index.
    pub to: usize,
    /// Scheduling lane of this direction's delivery events.
    pub lane: Lane,
    /// Line rate, for lookahead (cell serialisation time) computation.
    pub rate_bps: u64,
    /// One-way propagation delay, the other lookahead term.
    pub prop_delay: Ns,
}

/// The network: switches, inter-switch links, endpoints, signalling.
pub struct Network {
    switches: Vec<Rc<RefCell<Switch>>>,
    /// adjacency\[s\] = list of (out port on s, peer switch index).
    adj: Vec<Vec<(usize, usize)>>,
    /// used_ports\[s\] = lowest port index never explicitly or
    /// automatically wired on switch `s` (ports below it may include
    /// gaps left by explicit wiring; auto-allocation never reuses them).
    used_ports: Vec<usize>,
    endpoints: Vec<EndpointInfo>,
    /// Every inter-switch link direction, in wiring order. Entry `i`
    /// carries lane `i + 1`.
    trunks: Vec<TrunkDir>,
    acs: HashMap<ReservationKey, AdmissionController>,
    /// dead\[s\] = switch `s` has failed: no adjacency, no routes, and
    /// signalling refuses to route anything through or onto it.
    dead: Vec<bool>,
    next_vci: Vci,
    next_conn: u64,
    /// Fraction of each link's rate available to guaranteed reservations.
    pub reservable_fraction: f64,
}

impl Default for Network {
    fn default() -> Self {
        Self::new()
    }
}

impl Network {
    /// Creates an empty network.
    pub fn new() -> Self {
        Network {
            switches: Vec::new(),
            adj: Vec::new(),
            used_ports: Vec::new(),
            endpoints: Vec::new(),
            trunks: Vec::new(),
            acs: HashMap::new(),
            dead: Vec::new(),
            next_vci: 32,
            next_conn: 1,
            reservable_fraction: 0.95,
        }
    }

    /// Adds a switch with `ports` ports and `fabric_latency` per-cell
    /// fabric delay.
    pub fn add_switch(&mut self, name: &str, ports: usize, fabric_latency: Ns) -> SwitchId {
        self.switches
            .push(Switch::shared(name, ports, fabric_latency));
        self.adj.push(Vec::new());
        self.used_ports.push(0);
        self.dead.push(false);
        SwitchId(self.switches.len() - 1)
    }

    /// Access to a switch (for stats or manual route inspection).
    pub fn switch(&self, id: SwitchId) -> &Rc<RefCell<Switch>> {
        &self.switches[id.0]
    }

    /// Number of switches in the network.
    pub fn switch_count(&self) -> usize {
        self.switches.len()
    }

    /// Reserves the next never-used port on `sw`, growing the switch if
    /// its fixed port count is exhausted.
    pub fn alloc_port(&mut self, sw: SwitchId) -> usize {
        let port = self.used_ports[sw.0];
        self.used_ports[sw.0] = port + 1;
        self.switches[sw.0].borrow_mut().grow_ports(port + 1);
        port
    }

    /// Wires a fabric of `n` fresh switches in the given shape and
    /// returns their ids. Switches are named `{prefix}{index}` with
    /// `ports` initial ports each (they grow on demand as endpoints
    /// attach).
    pub fn build_topology(
        &mut self,
        shape: TopologyShape,
        n: usize,
        prefix: &str,
        ports: usize,
        fabric_latency: Ns,
        cfg: LinkConfig,
    ) -> Vec<SwitchId> {
        assert!(n >= 1, "a topology needs at least one switch");
        let ids: Vec<SwitchId> = (0..n)
            .map(|i| self.add_switch(&format!("{prefix}{i}"), ports, fabric_latency))
            .collect();
        match shape {
            TopologyShape::Star => {
                for &spoke in &ids[1..] {
                    self.connect_switches_auto(ids[0], spoke, cfg);
                }
            }
            TopologyShape::Ring => {
                if n == 2 {
                    self.connect_switches_auto(ids[0], ids[1], cfg);
                } else if n > 2 {
                    for i in 0..n {
                        self.connect_switches_auto(ids[i], ids[(i + 1) % n], cfg);
                    }
                }
            }
            TopologyShape::FullMesh => {
                for i in 0..n {
                    for j in i + 1..n {
                        self.connect_switches_auto(ids[i], ids[j], cfg);
                    }
                }
            }
        }
        ids
    }

    /// Connects two switches bidirectionally with identical link
    /// parameters in each direction.
    pub fn connect_switches(
        &mut self,
        a: SwitchId,
        pa: usize,
        b: SwitchId,
        pb: usize,
        cfg: LinkConfig,
    ) {
        let mut link_ab = Link::new(
            cfg.rate_bps,
            cfg.prop_delay,
            input_port(&self.switches[b.0], pb),
        );
        let mut link_ba = Link::new(
            cfg.rate_bps,
            cfg.prop_delay,
            input_port(&self.switches[a.0], pa),
        );
        // Every trunk direction gets its own scheduling lane,
        // unconditionally — single-threaded runs use the same lanes, so
        // equal-time tie-breaking is identical at every shard count.
        let lane_ab = (self.trunks.len() + 1) as Lane;
        let lane_ba = (self.trunks.len() + 2) as Lane;
        link_ab.set_lane(lane_ab);
        link_ba.set_lane(lane_ba);
        self.trunks.push(TrunkDir {
            from: a.0,
            port: pa,
            to: b.0,
            lane: lane_ab,
            rate_bps: cfg.rate_bps,
            prop_delay: cfg.prop_delay,
        });
        self.trunks.push(TrunkDir {
            from: b.0,
            port: pb,
            to: a.0,
            lane: lane_ba,
            rate_bps: cfg.rate_bps,
            prop_delay: cfg.prop_delay,
        });
        self.switches[a.0].borrow_mut().attach_output(pa, link_ab);
        self.switches[b.0].borrow_mut().attach_output(pb, link_ba);
        self.adj[a.0].push((pa, b.0));
        self.adj[b.0].push((pb, a.0));
        self.used_ports[a.0] = self.used_ports[a.0].max(pa + 1);
        self.used_ports[b.0] = self.used_ports[b.0].max(pb + 1);
        self.acs.insert(
            ReservationKey::SwitchOut(a.0, pa),
            AdmissionController::new(cfg.rate_bps, self.reservable_fraction),
        );
        self.acs.insert(
            ReservationKey::SwitchOut(b.0, pb),
            AdmissionController::new(cfg.rate_bps, self.reservable_fraction),
        );
    }

    /// Connects two switches bidirectionally on automatically allocated
    /// ports, growing either switch as needed. Returns the ports used.
    pub fn connect_switches_auto(
        &mut self,
        a: SwitchId,
        b: SwitchId,
        cfg: LinkConfig,
    ) -> (usize, usize) {
        let pa = self.alloc_port(a);
        let pb = self.alloc_port(b);
        self.connect_switches(a, pa, b, pb, cfg);
        (pa, pb)
    }

    /// Attaches an endpoint to `port` of `sw`. `rx_sink` receives the
    /// cells the network delivers to this endpoint; the returned id's
    /// transmit link is obtained with [`Network::endpoint_tx`].
    pub fn add_endpoint(
        &mut self,
        sw: SwitchId,
        port: usize,
        cfg: LinkConfig,
        rx_sink: SinkRef,
    ) -> EndpointId {
        let tx = Rc::new(RefCell::new(Link::new(
            cfg.rate_bps,
            cfg.prop_delay,
            input_port(&self.switches[sw.0], port),
        )));
        self.switches[sw.0]
            .borrow_mut()
            .attach_output(port, Link::new(cfg.rate_bps, cfg.prop_delay, rx_sink));
        let id = EndpointId(self.endpoints.len());
        self.used_ports[sw.0] = self.used_ports[sw.0].max(port + 1);
        self.endpoints.push(EndpointInfo {
            switch: sw.0,
            port,
            tx,
        });
        self.acs.insert(
            ReservationKey::EndpointTx(id.0),
            AdmissionController::new(cfg.rate_bps, self.reservable_fraction),
        );
        self.acs.insert(
            ReservationKey::SwitchOut(sw.0, port),
            AdmissionController::new(cfg.rate_bps, self.reservable_fraction),
        );
        id
    }

    /// Attaches an endpoint on an automatically allocated port of `sw`,
    /// growing the switch as needed — the bulk path scenario builders
    /// use to hang hundreds of devices off one fabric switch.
    pub fn add_endpoint_auto(
        &mut self,
        sw: SwitchId,
        cfg: LinkConfig,
        rx_sink: SinkRef,
    ) -> EndpointId {
        let port = self.alloc_port(sw);
        self.add_endpoint(sw, port, cfg, rx_sink)
    }

    /// The transmit link an endpoint uses to inject cells.
    pub fn endpoint_tx(&self, ep: EndpointId) -> Rc<RefCell<Link>> {
        self.endpoints[ep.0].tx.clone()
    }

    /// Number of endpoints attached.
    pub fn endpoint_count(&self) -> usize {
        self.endpoints.len()
    }

    /// The fabric switch an endpoint hangs off — ownership of the
    /// endpoint in a sharded run follows this switch.
    pub fn endpoint_switch(&self, ep: EndpointId) -> SwitchId {
        SwitchId(self.endpoints[ep.0].switch)
    }

    /// Every inter-switch link direction, in wiring order. The shard
    /// partitioner reads this to find cut links (trunks whose two ends
    /// land in different shards) and to compute the conservative
    /// lookahead window (min over cut trunks of cell time + propagation
    /// delay).
    pub fn trunks(&self) -> &[TrunkDir] {
        &self.trunks
    }

    /// Runs `f` on the output link at `port` of switch `sw` — the
    /// sharded executor's hook for redirecting a cut trunk's transmit
    /// side into an export buffer ([`Link::set_export`]) and for
    /// injecting sealed cells into the receiving replica
    /// ([`Link::inject`]).
    ///
    /// # Panics
    ///
    /// Panics if the port is unwired.
    pub fn with_switch_output<R>(
        &self,
        sw: usize,
        port: usize,
        f: impl FnOnce(&mut Link) -> R,
    ) -> R {
        let mut guard = self.switches[sw].borrow_mut();
        f(guard.output_mut(port).expect("trunk port wired"))
    }

    fn alloc_vci(&mut self) -> Vci {
        let v = self.next_vci;
        self.next_vci = self.next_vci.checked_add(1).expect("VCI space exhausted");
        v
    }

    /// The admission-controller keys a guaranteed `src → dst` connection
    /// reserves on, in reservation order: the endpoint's transmit link,
    /// every inter-switch hop of `hops` (as produced by
    /// [`Network::bfs_path`]), and the final delivery link. Both
    /// [`Network::open_vc`] and [`Network::probe_vcs`] walk exactly this
    /// list — the broker's "a successful probe implies the opens
    /// succeed" contract depends on the two never diverging.
    fn reservation_keys(
        &self,
        src: EndpointId,
        dst: EndpointId,
        hops: &[(usize, usize)],
    ) -> Vec<ReservationKey> {
        let (dst_sw, dst_port) = (self.endpoints[dst.0].switch, self.endpoints[dst.0].port);
        let mut keys = vec![ReservationKey::EndpointTx(src.0)];
        keys.extend(
            hops.iter()
                .map(|&(sw, port)| ReservationKey::SwitchOut(sw, port)),
        );
        keys.push(ReservationKey::SwitchOut(dst_sw, dst_port));
        keys
    }

    /// Human-readable identity of a reservation key, for admission
    /// errors.
    fn key_name(&self, key: ReservationKey) -> String {
        match key {
            ReservationKey::EndpointTx(e) => format!("ep{e}:tx"),
            ReservationKey::SwitchOut(s, p) => {
                format!("{}:{p}", self.switches[s].borrow().name())
            }
        }
    }

    /// Breadth-first path of (switch, out-port) hops from `src` switch to
    /// `dst` switch; empty when `src == dst`.
    fn bfs_path(&self, src: usize, dst: usize) -> Option<Vec<(usize, usize)>> {
        if src == dst {
            return Some(Vec::new());
        }
        let mut prev: HashMap<usize, (usize, usize)> = HashMap::new(); // node -> (from, via port)
        let mut queue = VecDeque::from([src]);
        while let Some(node) = queue.pop_front() {
            for &(port, peer) in &self.adj[node] {
                if peer != src && !prev.contains_key(&peer) {
                    prev.insert(peer, (node, port));
                    if peer == dst {
                        // Reconstruct.
                        let mut hops = Vec::new();
                        let mut cur = dst;
                        while cur != src {
                            let (from, port) = prev[&cur];
                            hops.push((from, port));
                            cur = from;
                        }
                        hops.reverse();
                        return Some(hops);
                    }
                    queue.push_back(peer);
                }
            }
        }
        None
    }

    /// Opens a virtual circuit from `src` to `dst` with the requested QoS.
    ///
    /// For [`ServiceClass::Guaranteed`] connections, peak bandwidth is
    /// reserved on the endpoint's transmit link, every inter-switch hop,
    /// and the final delivery link; the call fails without side effects if
    /// any hop lacks capacity.
    pub fn open_vc(
        &mut self,
        src: EndpointId,
        dst: EndpointId,
        qos: QosSpec,
    ) -> Result<VcHandle, AdmissionError> {
        self.open_vc_pinned(src, dst, qos, None)
    }

    /// [`Network::open_vc`] with the two endpoint-segment VCIs optionally
    /// pinned instead of freshly allocated. Re-routing a live circuit
    /// around a dead switch pins them so neither endpoint has to be
    /// reconfigured: only the interior hops change.
    fn open_vc_pinned(
        &mut self,
        src: EndpointId,
        dst: EndpointId,
        qos: QosSpec,
        pin: Option<(Vci, Vci)>,
    ) -> Result<VcHandle, AdmissionError> {
        if src.0 >= self.endpoints.len() || dst.0 >= self.endpoints.len() {
            return Err(AdmissionError::UnknownEndpoint);
        }
        let (src_sw, src_port) = (self.endpoints[src.0].switch, self.endpoints[src.0].port);
        let (dst_sw, dst_port) = (self.endpoints[dst.0].switch, self.endpoints[dst.0].port);
        if self.dead[src_sw] || self.dead[dst_sw] {
            // A dead switch strands its endpoints: same-switch pairs
            // would otherwise route through zero hops and never consult
            // the (emptied) adjacency.
            return Err(AdmissionError::NoRoute);
        }
        let hops = self
            .bfs_path(src_sw, dst_sw)
            .ok_or(AdmissionError::NoRoute)?;

        // Admission control with rollback on failure.
        let mut reservations: Vec<(ReservationKey, u64)> = Vec::new();
        if qos.class == ServiceClass::Guaranteed {
            for key in self.reservation_keys(src, dst, &hops) {
                let name = self.key_name(key);
                let ac = self.acs.get_mut(&key).expect("admission controller exists");
                match ac.reserve(qos.peak_bps, &name) {
                    Ok(()) => reservations.push((key, qos.peak_bps)),
                    Err(e) => {
                        for (k, bps) in reservations {
                            self.acs.get_mut(&k).expect("reserved").release(bps);
                        }
                        return Err(e);
                    }
                }
            }
        }

        // Allocate one VCI per link segment: endpoint→sw_src, each
        // inter-switch hop, and the delivery segment. Pinned endpoint
        // VCIs (re-route) are reused verbatim; interior hops are always
        // fresh so a new path never collides with remnants of the old.
        let nsegs = hops.len() + 2;
        let mut vcis: Vec<Vci> = Vec::with_capacity(nsegs);
        for i in 0..nsegs {
            let pinned = match pin {
                Some((s, _)) if i == 0 => Some(s),
                Some((_, d)) if i == nsegs - 1 => Some(d),
                _ => None,
            };
            vcis.push(pinned.unwrap_or_else(|| self.alloc_vci()));
        }

        // Install routes. The switch path is src_sw, then the peer of each
        // hop. The in-port at src_sw is the endpoint port; at subsequent
        // switches it is the port of the reverse link, which by our
        // bidirectional wiring is the same-numbered port on the peer.
        let mut route = Vec::new();
        let mut in_port = src_port;
        let mut cur_sw = src_sw;
        for (i, &(sw, out_port)) in hops.iter().enumerate() {
            debug_assert_eq!(sw, cur_sw);
            self.switches[sw]
                .borrow_mut()
                .add_route(in_port, vcis[i], out_port, vcis[i + 1]);
            route.push((sw, in_port, vcis[i]));
            // Find the peer and the port the reverse link occupies there.
            let peer = self.adj[sw]
                .iter()
                .find(|&&(p, _)| p == out_port)
                .map(|&(_, peer)| peer)
                .expect("adjacency consistent");
            let peer_port = self.adj[peer]
                .iter()
                .find(|&&(_, q)| q == sw)
                .map(|&(p, _)| p)
                .expect("reverse adjacency consistent");
            cur_sw = peer;
            in_port = peer_port;
        }
        // Final switch: route to the destination endpoint's port.
        self.switches[cur_sw].borrow_mut().add_route(
            in_port,
            vcis[nsegs - 2],
            dst_port,
            vcis[nsegs - 1],
        );
        route.push((cur_sw, in_port, vcis[nsegs - 2]));

        let id = self.next_conn;
        self.next_conn += 1;
        Ok(VcHandle {
            id,
            src_vci: vcis[0],
            dst_vci: vcis[nsegs - 1],
            qos,
            route,
            reservations,
            src,
            dst,
        })
    }

    /// Checks whether a *set* of guaranteed connections could all be
    /// admitted at once, without reserving anything.
    ///
    /// Each flow is `(src, dst, peak_bps)`. Demands are accumulated per
    /// link, so two flows sharing an inter-switch hop are checked
    /// jointly — exactly the situation a session with a video and an
    /// audio stream between the same two sites is in. The QoS broker
    /// uses this to decide admit/degrade/reject before committing; a
    /// subsequent [`Network::open_vc`] per flow is then guaranteed to
    /// succeed (signalling is single-threaded, nothing can interleave).
    pub fn probe_vcs(&self, flows: &[(EndpointId, EndpointId, u64)]) -> Result<(), AdmissionError> {
        // Accumulate in a Vec (not a HashMap) so that the order demands
        // are checked in — and therefore which saturated link an error
        // names — is deterministic.
        let mut demand: Vec<(ReservationKey, u64)> = Vec::new();
        let add =
            |demand: &mut Vec<(ReservationKey, u64)>, key: ReservationKey, bps: u64| match demand
                .iter_mut()
                .find(|(k, _)| *k == key)
            {
                Some((_, total)) => *total += bps,
                None => demand.push((key, bps)),
            };
        for &(src, dst, bps) in flows {
            if src.0 >= self.endpoints.len() || dst.0 >= self.endpoints.len() {
                return Err(AdmissionError::UnknownEndpoint);
            }
            let (src_sw, dst_sw) = (self.endpoints[src.0].switch, self.endpoints[dst.0].switch);
            let hops = self
                .bfs_path(src_sw, dst_sw)
                .ok_or(AdmissionError::NoRoute)?;
            for key in self.reservation_keys(src, dst, &hops) {
                add(&mut demand, key, bps);
            }
        }
        for (key, bps) in demand {
            let ac = self.acs.get(&key).expect("admission controller exists");
            if bps > ac.available_bps() {
                return Err(AdmissionError::InsufficientBandwidth {
                    link: self.key_name(key),
                    requested: bps,
                    available: ac.available_bps(),
                });
            }
        }
        Ok(())
    }

    /// Re-sizes a live circuit's guaranteed bandwidth in place — the
    /// signalling half of a QoS renegotiation. Routes and VCIs are
    /// untouched (cells in flight are unaffected); only the ledger
    /// entries change, on exactly the keys the original admission
    /// reserved. Fails without side effects if any hop lacks capacity
    /// for the new rate (old reservations are restored).
    ///
    /// Best-effort circuits carry no reservations; the call just
    /// records the new rate on the handle.
    pub fn resize_vc(&mut self, vc: &mut VcHandle, new_bps: u64) -> Result<(), AdmissionError> {
        if vc.reservations.is_empty() {
            vc.qos.peak_bps = new_bps;
            return Ok(());
        }
        let old = std::mem::take(&mut vc.reservations);
        for &(key, bps) in &old {
            self.acs.get_mut(&key).expect("was reserved").release(bps);
        }
        let mut made: Vec<(ReservationKey, u64)> = Vec::with_capacity(old.len());
        for &(key, _) in &old {
            let name = self.key_name(key);
            let ac = self.acs.get_mut(&key).expect("admission controller exists");
            match ac.reserve(new_bps, &name) {
                Ok(()) => made.push((key, new_bps)),
                Err(e) => {
                    for (k, bps) in made {
                        self.acs.get_mut(&k).expect("just reserved").release(bps);
                    }
                    for &(k, bps) in &old {
                        let name = self.key_name(k);
                        self.acs
                            .get_mut(&k)
                            .expect("was reserved")
                            .reserve(bps, &name)
                            .expect("released capacity restores");
                    }
                    vc.reservations = old;
                    return Err(e);
                }
            }
        }
        vc.reservations = made;
        vc.qos.peak_bps = new_bps;
        Ok(())
    }

    /// Tears down a virtual circuit, removing routes and releasing
    /// reservations.
    pub fn close_vc(&mut self, vc: VcHandle) {
        for (sw, in_port, in_vci) in vc.route {
            self.switches[sw].borrow_mut().remove_route(in_port, in_vci);
        }
        for (key, bps) in vc.reservations {
            if let Some(ac) = self.acs.get_mut(&key) {
                ac.release(bps);
            }
        }
    }

    /// Kills a fabric switch: its translation table is wiped (cells
    /// already crossing it drop as unroutable), every adjacency touching
    /// it is removed so signalling routes around the corpse, and any
    /// endpoint attached to it is stranded until further notice.
    ///
    /// Live circuits are *not* touched — the caller walks its open
    /// [`VcHandle`]s and calls [`Network::reroute_vc`] on each one that
    /// [`VcHandle::crosses_switch`] reports affected.
    pub fn fail_switch(&mut self, sw: SwitchId) {
        self.dead[sw.0] = true;
        self.switches[sw.0].borrow_mut().clear_routes();
        self.adj[sw.0].clear();
        for peers in &mut self.adj {
            peers.retain(|&(_, peer)| peer != sw.0);
        }
    }

    /// Whether [`Network::fail_switch`] has killed `sw`.
    pub fn switch_is_dead(&self, sw: SwitchId) -> bool {
        self.dead[sw.0]
    }

    /// Re-routes a live circuit over the surviving topology — the
    /// signalling half of switch-failure recovery.
    ///
    /// The old circuit is always torn down (routes removed, reservations
    /// released). On success the replacement keeps the original
    /// endpoint-segment VCIs, so the transmitting and receiving devices
    /// keep working unmodified; only interior hops change. When no
    /// alternate path or capacity exists the circuit stays closed and
    /// the error says why — the caller decides whether that strands a
    /// session or triggers renegotiation.
    pub fn reroute_vc(&mut self, vc: VcHandle) -> Result<VcHandle, AdmissionError> {
        let (src, dst, qos) = (vc.src, vc.dst, vc.qos);
        let pin = (vc.src_vci, vc.dst_vci);
        self.close_vc(vc);
        self.open_vc_pinned(src, dst, qos, Some(pin))
    }

    /// Remaining guaranteed bandwidth on an endpoint's transmit link.
    pub fn endpoint_tx_available(&self, ep: EndpointId) -> u64 {
        self.acs
            .get(&ReservationKey::EndpointTx(ep.0))
            .map(|ac| ac.available_bps())
            .unwrap_or(0)
    }

    /// The most heavily reserved link in the network, as a fraction of
    /// its raw line rate. Admission control caps this at
    /// [`Network::reservable_fraction`]; topology property tests assert
    /// the invariant from the outside.
    pub fn max_reservation_utilization(&self) -> f64 {
        self.acs
            .values()
            .map(|ac| ac.reserved_bps() as f64 / ac.capacity_bps() as f64)
            .fold(0.0, f64::max)
    }

    /// Whether a route exists between every pair of switches.
    pub fn is_connected(&self) -> bool {
        let n = self.switches.len();
        if n <= 1 {
            return true;
        }
        let mut seen = vec![false; n];
        seen[0] = true;
        let mut queue = VecDeque::from([0usize]);
        let mut count = 1;
        while let Some(node) = queue.pop_front() {
            for &(_, peer) in &self.adj[node] {
                if !seen[peer] {
                    seen[peer] = true;
                    count += 1;
                    queue.push_back(peer);
                }
            }
        }
        count == n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::Cell;
    use crate::link::CaptureSink;
    use pegasus_sim::Simulator;

    /// Two workstations, each an edge switch with camera/display
    /// endpoints, joined by a backbone link — the Figure 4 shape.
    fn two_site_net() -> (Network, EndpointId, EndpointId, Rc<RefCell<CaptureSink>>) {
        let mut net = Network::new();
        let cfg = LinkConfig::pegasus_default();
        let sw_a = net.add_switch("fairisle-a", 8, 500);
        let sw_b = net.add_switch("fairisle-b", 8, 500);
        net.connect_switches(sw_a, 0, sw_b, 0, cfg);
        let cam_sink = CaptureSink::shared(); // camera receives nothing
        let cam = net.add_endpoint(sw_a, 1, cfg, cam_sink);
        let disp_sink = CaptureSink::shared();
        let disp = net.add_endpoint(sw_b, 1, cfg, disp_sink.clone());
        (net, cam, disp, disp_sink)
    }

    #[test]
    fn vc_carries_cells_end_to_end() {
        let (mut net, cam, disp, disp_sink) = two_site_net();
        let vc = net
            .open_vc(cam, disp, QosSpec::guaranteed(10_000_000))
            .unwrap();
        let mut sim = Simulator::new();
        let tx = net.endpoint_tx(cam);
        for _ in 0..5 {
            tx.borrow_mut().send(&mut sim, Cell::new(vc.src_vci));
        }
        sim.run();
        let arr = &disp_sink.borrow().arrivals;
        assert_eq!(arr.len(), 5);
        for (_, c) in arr {
            assert_eq!(c.vci(), vc.dst_vci);
        }
        // 3 link traversals + 2 fabric latencies; first cell:
        // 3×(4240 + 1000) + 2×500 = 16720.
        assert_eq!(arr[0].0, 16_720);
    }

    #[test]
    fn same_switch_vc() {
        let mut net = Network::new();
        let cfg = LinkConfig::pegasus_default();
        let sw = net.add_switch("local", 4, 0);
        let a_sink = CaptureSink::shared();
        let a = net.add_endpoint(sw, 0, cfg, a_sink);
        let b_sink = CaptureSink::shared();
        let b = net.add_endpoint(sw, 1, cfg, b_sink.clone());
        let vc = net.open_vc(a, b, QosSpec::best_effort(0)).unwrap();
        let mut sim = Simulator::new();
        net.endpoint_tx(a)
            .borrow_mut()
            .send(&mut sim, Cell::new(vc.src_vci));
        sim.run();
        assert_eq!(b_sink.borrow().arrivals.len(), 1);
    }

    #[test]
    fn admission_control_refuses_oversubscription() {
        let (mut net, cam, disp, _) = two_site_net();
        // 95 Mbit/s reservable on the 100 Mbit/s backbone.
        let _vc1 = net
            .open_vc(cam, disp, QosSpec::guaranteed(60_000_000))
            .unwrap();
        let err = net
            .open_vc(cam, disp, QosSpec::guaranteed(60_000_000))
            .unwrap_err();
        assert!(matches!(err, AdmissionError::InsufficientBandwidth { .. }));
        // Best effort still admitted.
        net.open_vc(cam, disp, QosSpec::best_effort(60_000_000))
            .unwrap();
    }

    #[test]
    fn failed_admission_rolls_back() {
        let (mut net, cam, disp, _) = two_site_net();
        let before = net.endpoint_tx_available(cam);
        let _ = net
            .open_vc(cam, disp, QosSpec::guaranteed(99_000_000))
            .unwrap_err();
        assert_eq!(net.endpoint_tx_available(cam), before);
    }

    #[test]
    fn resize_vc_moves_the_ledgers_and_rolls_back() {
        let (mut net, cam, disp, disp_sink) = two_site_net();
        let before = net.endpoint_tx_available(cam);
        let mut vc = net
            .open_vc(cam, disp, QosSpec::guaranteed(60_000_000))
            .unwrap();
        let (src_vci, dst_vci) = (vc.src_vci, vc.dst_vci);

        // Down: frees headroom; routes and VCIs untouched, traffic flows.
        net.resize_vc(&mut vc, 30_000_000).unwrap();
        assert_eq!(net.endpoint_tx_available(cam), before - 30_000_000);
        assert_eq!((vc.src_vci, vc.dst_vci), (src_vci, dst_vci));
        let mut sim = Simulator::new();
        net.endpoint_tx(cam)
            .borrow_mut()
            .send(&mut sim, Cell::new(vc.src_vci));
        sim.run();
        assert_eq!(disp_sink.borrow().arrivals.len(), 1);

        // Up past what a second circuit now holds: fails, old rate kept.
        let other = net
            .open_vc(cam, disp, QosSpec::guaranteed(50_000_000))
            .unwrap();
        let err = net.resize_vc(&mut vc, 60_000_000).unwrap_err();
        assert!(matches!(err, AdmissionError::InsufficientBandwidth { .. }));
        assert_eq!(
            vc.qos.peak_bps, 30_000_000,
            "failed resize kept the old rate"
        );
        assert_eq!(net.endpoint_tx_available(cam), before - 80_000_000);

        // Back up once the contender is gone: original rate restores.
        net.close_vc(other);
        net.resize_vc(&mut vc, 60_000_000).unwrap();
        assert_eq!(net.endpoint_tx_available(cam), before - 60_000_000);
        net.close_vc(vc);
        assert_eq!(
            net.endpoint_tx_available(cam),
            before,
            "no leak after resizes"
        );
    }

    #[test]
    fn vcis_cover_every_hop_label() {
        let (mut net, cam, disp, _) = two_site_net();
        let vc = net
            .open_vc(cam, disp, QosSpec::guaranteed(10_000_000))
            .unwrap();
        let vcis: Vec<Vci> = vc.vcis().collect();
        // Two switches: endpoint segment, inter-switch hop, delivery.
        assert_eq!(vcis.len(), 3);
        assert!(vcis.contains(&vc.src_vci));
        assert!(vcis.contains(&vc.dst_vci));
    }

    #[test]
    fn close_vc_releases_and_stops_traffic() {
        let (mut net, cam, disp, disp_sink) = two_site_net();
        let vc = net
            .open_vc(cam, disp, QosSpec::guaranteed(90_000_000))
            .unwrap();
        let src_vci = vc.src_vci;
        net.close_vc(vc);
        // Bandwidth is back.
        net.open_vc(cam, disp, QosSpec::guaranteed(90_000_000))
            .unwrap();
        // Cells on the old VCI are now unroutable.
        let mut sim = Simulator::new();
        net.endpoint_tx(cam)
            .borrow_mut()
            .send(&mut sim, Cell::new(src_vci));
        sim.run();
        assert_eq!(disp_sink.borrow().arrivals.len(), 0);
    }

    #[test]
    fn switch_death_reroutes_over_surviving_ring() {
        let mut net = Network::new();
        let cfg = LinkConfig::pegasus_default();
        let ring = net.build_topology(TopologyShape::Ring, 4, "r", 4, 0, cfg);
        let a = net.add_endpoint_auto(ring[0], cfg, CaptureSink::shared());
        let b_sink = CaptureSink::shared();
        let b = net.add_endpoint_auto(ring[2], cfg, b_sink.clone());
        let vc = net.open_vc(a, b, QosSpec::guaranteed(10_000_000)).unwrap();
        // BFS found some two-hop path; kill the transit switch it chose.
        let transit = if vc.crosses_switch(ring[1]) {
            ring[1]
        } else {
            ring[3]
        };
        net.fail_switch(transit);
        assert!(net.switch_is_dead(transit));
        let (src_vci, dst_vci) = (vc.src_vci, vc.dst_vci);
        let vc = net.reroute_vc(vc).expect("ring survives one death");
        assert_eq!(vc.src_vci, src_vci, "sender keeps its VCI");
        assert_eq!(vc.dst_vci, dst_vci, "receiver keeps its VCI");
        assert!(!vc.crosses_switch(transit), "new path avoids the corpse");
        let mut sim = Simulator::new();
        net.endpoint_tx(a)
            .borrow_mut()
            .send(&mut sim, Cell::new(vc.src_vci));
        sim.run();
        let arr = &b_sink.borrow().arrivals;
        assert_eq!(arr.len(), 1, "traffic flows around the dead switch");
        assert_eq!(arr[0].1.vci(), dst_vci);
    }

    #[test]
    fn endpoint_on_dead_switch_is_stranded() {
        let mut net = Network::new();
        let cfg = LinkConfig::pegasus_default();
        let ring = net.build_topology(TopologyShape::Ring, 3, "r", 4, 0, cfg);
        let a = net.add_endpoint_auto(ring[0], cfg, CaptureSink::shared());
        let b = net.add_endpoint_auto(ring[1], cfg, CaptureSink::shared());
        let before = net.endpoint_tx_available(a);
        let vc = net.open_vc(a, b, QosSpec::guaranteed(10_000_000)).unwrap();
        net.fail_switch(ring[1]);
        assert_eq!(
            net.reroute_vc(vc).unwrap_err(),
            AdmissionError::NoRoute,
            "no alternate attach point exists"
        );
        // The failed reroute still released the old reservations.
        assert_eq!(net.endpoint_tx_available(a), before);
        // Fresh circuits to or on the dead switch are refused, even
        // same-switch pairs that need no inter-switch hop.
        let c = net.add_endpoint_auto(ring[1], cfg, CaptureSink::shared());
        assert_eq!(
            net.open_vc(b, c, QosSpec::best_effort(0)).unwrap_err(),
            AdmissionError::NoRoute
        );
    }

    #[test]
    fn no_route_between_disconnected_islands() {
        let mut net = Network::new();
        let cfg = LinkConfig::pegasus_default();
        let sw_a = net.add_switch("a", 2, 0);
        let sw_b = net.add_switch("b", 2, 0);
        let a = net.add_endpoint(sw_a, 0, cfg, CaptureSink::shared());
        let b = net.add_endpoint(sw_b, 0, cfg, CaptureSink::shared());
        assert_eq!(
            net.open_vc(a, b, QosSpec::best_effort(0)).unwrap_err(),
            AdmissionError::NoRoute
        );
    }

    #[test]
    fn unknown_endpoint_rejected() {
        let mut net = Network::new();
        let cfg = LinkConfig::pegasus_default();
        let sw = net.add_switch("a", 2, 0);
        let a = net.add_endpoint(sw, 0, cfg, CaptureSink::shared());
        let bogus = EndpointId(42);
        assert_eq!(
            net.open_vc(a, bogus, QosSpec::best_effort(0)).unwrap_err(),
            AdmissionError::UnknownEndpoint
        );
    }

    #[test]
    fn multi_hop_routing_three_switches() {
        let mut net = Network::new();
        let cfg = LinkConfig::pegasus_default();
        let s0 = net.add_switch("s0", 4, 0);
        let s1 = net.add_switch("s1", 4, 0);
        let s2 = net.add_switch("s2", 4, 0);
        net.connect_switches(s0, 0, s1, 0, cfg);
        net.connect_switches(s1, 1, s2, 0, cfg);
        let a = net.add_endpoint(s0, 2, cfg, CaptureSink::shared());
        let sink = CaptureSink::shared();
        let b = net.add_endpoint(s2, 2, cfg, sink.clone());
        let vc = net.open_vc(a, b, QosSpec::guaranteed(1_000_000)).unwrap();
        let mut sim = Simulator::new();
        net.endpoint_tx(a)
            .borrow_mut()
            .send(&mut sim, Cell::new(vc.src_vci));
        sim.run();
        assert_eq!(sink.borrow().arrivals.len(), 1);
        assert_eq!(sink.borrow().arrivals[0].1.vci(), vc.dst_vci);
    }

    #[test]
    fn topology_shapes_are_connected_and_route() {
        for shape in [
            TopologyShape::Star,
            TopologyShape::Ring,
            TopologyShape::FullMesh,
        ] {
            for n in [1usize, 2, 3, 5, 8] {
                let mut net = Network::new();
                let cfg = LinkConfig::pegasus_default();
                let ids = net.build_topology(shape, n, "fab", 4, 100, cfg);
                assert_eq!(ids.len(), n);
                assert!(net.is_connected(), "{shape:?} n={n} must be connected");
                // An endpoint on every switch can reach one on the last.
                let sink = CaptureSink::shared();
                let dst = net.add_endpoint_auto(ids[n - 1], cfg, sink.clone());
                let mut sim = Simulator::new();
                let mut expected = 0;
                for &sw in &ids[..n - 1] {
                    let src = net.add_endpoint_auto(sw, cfg, CaptureSink::shared());
                    let vc = net.open_vc(src, dst, QosSpec::best_effort(0)).unwrap();
                    net.endpoint_tx(src)
                        .borrow_mut()
                        .send(&mut sim, Cell::new(vc.src_vci));
                    expected += 1;
                }
                sim.run();
                assert_eq!(sink.borrow().arrivals.len(), expected, "{shape:?} n={n}");
            }
        }
    }

    #[test]
    fn auto_ports_grow_past_declared_size() {
        let mut net = Network::new();
        let cfg = LinkConfig::pegasus_default();
        let sw = net.add_switch("tiny", 2, 0);
        let sink = CaptureSink::shared();
        let eps: Vec<EndpointId> = (0..6)
            .map(|_| net.add_endpoint_auto(sw, cfg, sink.clone()))
            .collect();
        assert_eq!(net.switch(sw).borrow().ports(), 6);
        let vc = net
            .open_vc(eps[0], eps[5], QosSpec::best_effort(0))
            .unwrap();
        let mut sim = Simulator::new();
        net.endpoint_tx(eps[0])
            .borrow_mut()
            .send(&mut sim, Cell::new(vc.src_vci));
        sim.run();
        assert_eq!(sink.borrow().arrivals.len(), 1);
    }

    #[test]
    fn auto_ports_skip_explicitly_wired_ones() {
        let mut net = Network::new();
        let cfg = LinkConfig::pegasus_default();
        let a = net.add_switch("a", 8, 0);
        let b = net.add_switch("b", 8, 0);
        net.connect_switches(a, 3, b, 0, cfg);
        // The allocator must not hand out a port at or below 3 on `a`.
        let ep = net.add_endpoint_auto(a, cfg, CaptureSink::shared());
        assert_eq!(net.endpoints[ep.0].port, 4);
    }

    #[test]
    fn reservation_utilization_tracks_admissions() {
        let (mut net, cam, disp, _) = two_site_net();
        assert_eq!(net.max_reservation_utilization(), 0.0);
        let _vc = net
            .open_vc(cam, disp, QosSpec::guaranteed(50_000_000))
            .unwrap();
        let u = net.max_reservation_utilization();
        assert!((u - 0.5).abs() < 1e-9, "utilization {u}");
        assert!(u <= net.reservable_fraction);
    }

    #[test]
    fn probe_checks_joint_feasibility_without_reserving() {
        let (mut net, cam, disp, _) = two_site_net();
        // Individually each flow fits the 95 Mbit/s reservable trunk;
        // jointly they do not — the probe must see the shared hop.
        net.probe_vcs(&[(cam, disp, 60_000_000)]).unwrap();
        net.probe_vcs(&[(cam, disp, 60_000_000), (cam, disp, 60_000_000)])
            .unwrap_err();
        // Probing reserved nothing.
        assert_eq!(net.max_reservation_utilization(), 0.0);
        // A successful probe's flows then open for real.
        net.probe_vcs(&[(cam, disp, 50_000_000), (cam, disp, 40_000_000)])
            .unwrap();
        net.open_vc(cam, disp, QosSpec::guaranteed(50_000_000))
            .unwrap();
        net.open_vc(cam, disp, QosSpec::guaranteed(40_000_000))
            .unwrap();
    }

    #[test]
    fn probe_reports_routes_and_endpoints_like_open_vc() {
        let mut net = Network::new();
        let cfg = LinkConfig::pegasus_default();
        let sw_a = net.add_switch("a", 2, 0);
        let sw_b = net.add_switch("b", 2, 0);
        let a = net.add_endpoint(sw_a, 0, cfg, CaptureSink::shared());
        let b = net.add_endpoint(sw_b, 0, cfg, CaptureSink::shared());
        assert_eq!(
            net.probe_vcs(&[(a, b, 1)]).unwrap_err(),
            AdmissionError::NoRoute
        );
        assert_eq!(
            net.probe_vcs(&[(a, EndpointId(42), 1)]).unwrap_err(),
            AdmissionError::UnknownEndpoint
        );
    }

    #[test]
    fn probe_accounts_existing_reservations() {
        let (mut net, cam, disp, _) = two_site_net();
        let _vc = net
            .open_vc(cam, disp, QosSpec::guaranteed(90_000_000))
            .unwrap();
        let err = net.probe_vcs(&[(cam, disp, 10_000_000)]).unwrap_err();
        assert!(matches!(err, AdmissionError::InsufficientBandwidth { .. }));
        net.probe_vcs(&[(cam, disp, 5_000_000)]).unwrap();
    }

    #[test]
    fn distinct_vcs_get_distinct_vcis() {
        let (mut net, cam, disp, _) = two_site_net();
        let v1 = net.open_vc(cam, disp, QosSpec::best_effort(0)).unwrap();
        let v2 = net.open_vc(cam, disp, QosSpec::best_effort(0)).unwrap();
        assert_ne!(v1.src_vci, v2.src_vci);
        assert_ne!(v1.dst_vci, v2.dst_vci);
        assert_ne!(v1.id, v2.id);
    }
}
