//! Point-to-point cell transmission.
//!
//! A [`Link`] models the serialization and propagation of cells between
//! two ATM components: a cell of 53 bytes occupies the line for
//! `53·8 / rate` seconds and arrives `prop_delay` later. Back-to-back
//! sends queue behind the line (FIFO), which is where queueing delay and
//! jitter come from in the experiments.

use std::cell::RefCell;
use std::rc::Rc;

use pegasus_sim::time::{tx_time, Ns};
use pegasus_sim::Simulator;

use crate::cell::{Cell, CELL_SIZE};

/// Anything that can receive cells: switch ports, displays, audio sinks,
/// host network interfaces.
pub trait CellSink {
    /// Delivers one cell at the current simulation time.
    fn deliver(&mut self, sim: &mut Simulator, cell: Cell);
}

/// Shared handle to a [`CellSink`].
pub type SinkRef = Rc<RefCell<dyn CellSink>>;

/// A unidirectional link with a line rate and propagation delay.
///
/// The sender owns the link; the receiving end is any [`SinkRef`].
///
/// # Examples
///
/// ```
/// use pegasus_atm::link::{Link, CellSink, SinkRef};
/// use pegasus_atm::cell::Cell;
/// use pegasus_sim::Simulator;
/// use std::{cell::RefCell, rc::Rc};
///
/// struct Sink(Vec<u64>);
/// impl CellSink for Sink {
///     fn deliver(&mut self, sim: &mut Simulator, _c: Cell) { self.0.push(sim.now()); }
/// }
///
/// let sink = Rc::new(RefCell::new(Sink(Vec::new())));
/// let mut link = Link::new(100_000_000, 1_000, sink.clone() as SinkRef);
/// let mut sim = Simulator::new();
/// link.send(&mut sim, Cell::new(1));
/// sim.run();
/// // 53 B at 100 Mbit/s = 4.24 µs serialization + 1 µs propagation.
/// assert_eq!(sink.borrow().0, vec![5_240]);
/// ```
pub struct Link {
    rate_bps: u64,
    prop_delay: Ns,
    sink: SinkRef,
    next_free: Ns,
    cells_sent: u64,
}

impl Link {
    /// Creates a link at `rate_bps` bits/second with the given one-way
    /// propagation delay, feeding `sink`.
    pub fn new(rate_bps: u64, prop_delay: Ns, sink: SinkRef) -> Self {
        assert!(rate_bps > 0, "link rate must be positive");
        Link {
            rate_bps,
            prop_delay,
            sink,
            next_free: 0,
            cells_sent: 0,
        }
    }

    /// The configured line rate in bits per second.
    pub fn rate_bps(&self) -> u64 {
        self.rate_bps
    }

    /// Serialization time of one cell on this link.
    pub fn cell_time(&self) -> Ns {
        tx_time(CELL_SIZE, self.rate_bps)
    }

    /// Total cells handed to this link so far.
    pub fn cells_sent(&self) -> u64 {
        self.cells_sent
    }

    /// Earliest time a newly offered cell would start serializing.
    pub fn next_free(&self) -> Ns {
        self.next_free
    }

    /// Current transmit backlog: how long a cell offered now would wait
    /// before starting to serialize.
    pub fn backlog(&self, now: Ns) -> Ns {
        self.next_free.saturating_sub(now)
    }

    /// Queues `cell` for transmission; delivery to the sink is scheduled
    /// after queueing + serialization + propagation.
    ///
    /// Returns the absolute arrival time at the sink.
    pub fn send(&mut self, sim: &mut Simulator, cell: Cell) -> Ns {
        let start = self.next_free.max(sim.now());
        let done = start + self.cell_time();
        self.next_free = done;
        self.cells_sent += 1;
        let arrival = done + self.prop_delay;
        let sink = self.sink.clone();
        sim.schedule_at(arrival, move |sim| {
            sink.borrow_mut().deliver(sim, cell);
        });
        arrival
    }
}

/// A sink that records arrivals — the workhorse test/measurement probe.
#[derive(Default)]
pub struct CaptureSink {
    /// `(arrival time, cell)` pairs in delivery order.
    pub arrivals: Vec<(Ns, Cell)>,
}

impl CaptureSink {
    /// Creates an empty capture sink wrapped for sharing.
    pub fn shared() -> Rc<RefCell<CaptureSink>> {
        Rc::new(RefCell::new(CaptureSink::default()))
    }
}

impl CellSink for CaptureSink {
    fn deliver(&mut self, sim: &mut Simulator, cell: Cell) {
        self.arrivals.push((sim.now(), cell));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MBPS_100: u64 = 100_000_000;

    #[test]
    fn single_cell_timing() {
        let sink = CaptureSink::shared();
        let mut link = Link::new(MBPS_100, 500, sink.clone());
        let mut sim = Simulator::new();
        let arrival = link.send(&mut sim, Cell::new(7));
        assert_eq!(arrival, 4_240 + 500);
        sim.run();
        let got = sink.borrow();
        assert_eq!(got.arrivals.len(), 1);
        assert_eq!(got.arrivals[0].0, 4_740);
        assert_eq!(got.arrivals[0].1.vci(), 7);
    }

    #[test]
    fn back_to_back_cells_queue() {
        let sink = CaptureSink::shared();
        let mut link = Link::new(MBPS_100, 0, sink.clone());
        let mut sim = Simulator::new();
        for _ in 0..3 {
            link.send(&mut sim, Cell::new(1));
        }
        sim.run();
        let times: Vec<Ns> = sink.borrow().arrivals.iter().map(|(t, _)| *t).collect();
        assert_eq!(times, vec![4_240, 8_480, 12_720]);
    }

    #[test]
    fn idle_link_restarts_at_now() {
        let sink = CaptureSink::shared();
        let mut link = Link::new(MBPS_100, 0, sink.clone());
        let mut sim = Simulator::new();
        link.send(&mut sim, Cell::new(1));
        sim.run();
        // Much later, the link is idle again: no stale backlog.
        sim.run_until(1_000_000);
        assert_eq!(link.backlog(sim.now()), 0);
        link.send(&mut sim, Cell::new(2));
        sim.run();
        assert_eq!(sink.borrow().arrivals[1].0, 1_000_000 + 4_240);
    }

    #[test]
    fn fifo_order_preserved() {
        let sink = CaptureSink::shared();
        let mut link = Link::new(MBPS_100, 123, sink.clone());
        let mut sim = Simulator::new();
        for vci in 0..20u16 {
            link.send(&mut sim, Cell::new(vci));
        }
        sim.run();
        let vcis: Vec<u16> = sink.borrow().arrivals.iter().map(|(_, c)| c.vci()).collect();
        assert_eq!(vcis, (0..20).collect::<Vec<_>>());
    }

    #[test]
    fn backlog_reflects_queue() {
        let sink = CaptureSink::shared();
        let mut link = Link::new(MBPS_100, 0, sink);
        let mut sim = Simulator::new();
        for _ in 0..10 {
            link.send(&mut sim, Cell::new(1));
        }
        assert_eq!(link.backlog(0), 10 * 4_240);
        assert_eq!(link.cells_sent(), 10);
    }

    #[test]
    #[should_panic(expected = "link rate must be positive")]
    fn zero_rate_rejected() {
        let sink = CaptureSink::shared();
        let _ = Link::new(0, 0, sink);
    }
}
