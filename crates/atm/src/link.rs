//! Point-to-point cell transmission.
//!
//! A [`Link`] models the serialization and propagation of cells between
//! two ATM components: a cell of 53 bytes occupies the line for
//! `53·8 / rate` seconds and arrives `prop_delay` later. Back-to-back
//! sends queue behind the line (FIFO), which is where queueing delay and
//! jitter come from in the experiments.
//!
//! # Cell trains
//!
//! Cells queued behind a busy line form a *train*: a contiguous run whose
//! arrival times are fixed the moment each cell is accepted. The link
//! exploits this to keep the event engine off the per-cell hot path:
//!
//! * **Per-cell lane** (default): every cell still gets its own delivery
//!   event — exact per-cell delivery clock for timing-sensitive sinks —
//!   but the event is a [`SharedHandler`] created once per link, so
//!   scheduling a cell allocates nothing.
//! * **Batched lane**: sinks that declare [`CellSink::batch_capable`]
//!   (capture probes, storage recorders) receive whole trains in a single
//!   [`CellSink::deliver_batch`] call carrying explicit per-cell arrival
//!   times. One event may deliver thousands of cells; the recorded
//!   arrival times are bit-for-bit those of the per-cell lane.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

use pegasus_sim::time::{tx_time, Ns};
use pegasus_sim::{Lane, SharedHandler, Simulator};

use crate::cell::{Cell, Vci, CELL_SIZE};

/// The boundary buffer of a link whose receiver lives in another region
/// shard: `(arrival time, cell)` pairs accumulated during an epoch, in
/// send order, drained and sealed by the sharded executor at the next
/// barrier instead of being scheduled locally.
pub type ExportBuffer = Rc<RefCell<Vec<(Ns, Cell)>>>;

/// Anything that can receive cells: switch ports, displays, audio sinks,
/// host network interfaces.
pub trait CellSink {
    /// Delivers one cell at the current simulation time.
    fn deliver(&mut self, sim: &mut Simulator, cell: Cell);

    /// Delivers a train of back-to-back cells in one call.
    ///
    /// `cells` holds `(arrival time, cell)` pairs in arrival order; every
    /// arrival is `<= sim.now()` when the call is made. The default
    /// implementation drains them through [`CellSink::deliver`] one at a
    /// time. Links only use this entry point on sinks that report
    /// [`CellSink::batch_capable`]; such sinks must take their per-cell
    /// timing from the explicit timestamps, not from [`Simulator::now`].
    fn deliver_batch(&mut self, sim: &mut Simulator, cells: &mut Vec<(Ns, Cell)>) {
        for (_, cell) in cells.drain(..) {
            self.deliver(sim, cell);
        }
    }

    /// Whether a link may collapse a whole cell train into one
    /// [`CellSink::deliver_batch`] event instead of one event per cell.
    ///
    /// Return `true` only if the sink does not read [`Simulator::now`]
    /// (or schedule follow-up work) per cell — capture probes and bulk
    /// recorders qualify; switches, displays and DACs do not. The link
    /// samples this at the start of each train, so a sink may change its
    /// answer between trains (see `HostNic` forwarding) but not within
    /// one.
    fn batch_capable(&self) -> bool {
        false
    }
}

/// Shared handle to a [`CellSink`].
pub type SinkRef = Rc<RefCell<dyn CellSink>>;

/// The queue of accepted-but-undelivered cells on one link, shared
/// between the link (producer) and its delivery handler (consumer).
struct Train {
    /// `(arrival time, cell)` in arrival order.
    cells: VecDeque<(Ns, Cell)>,
    /// Scratch buffer handed to [`CellSink::deliver_batch`]; reused so a
    /// steady-state batched link performs no per-train allocations.
    burst: Vec<(Ns, Cell)>,
    /// Batched lane only: a delivery event is already scheduled.
    scheduled: bool,
    /// Lane chosen at train start (sink's `batch_capable` answer).
    batch: bool,
}

/// A unidirectional link with a line rate and propagation delay.
///
/// The sender owns the link; the receiving end is any [`SinkRef`].
///
/// # Examples
///
/// ```
/// use pegasus_atm::link::{Link, CellSink, SinkRef};
/// use pegasus_atm::cell::Cell;
/// use pegasus_sim::Simulator;
/// use std::{cell::RefCell, rc::Rc};
///
/// struct Sink(Vec<u64>);
/// impl CellSink for Sink {
///     fn deliver(&mut self, sim: &mut Simulator, _c: Cell) { self.0.push(sim.now()); }
/// }
///
/// let sink = Rc::new(RefCell::new(Sink(Vec::new())));
/// let mut link = Link::new(100_000_000, 1_000, sink.clone() as SinkRef);
/// let mut sim = Simulator::new();
/// link.send(&mut sim, Cell::new(1));
/// sim.run();
/// // 53 B at 100 Mbit/s = 4.24 µs serialization + 1 µs propagation.
/// assert_eq!(sink.borrow().0, vec![5_240]);
/// ```
pub struct Link {
    rate_bps: u64,
    prop_delay: Ns,
    sink: SinkRef,
    next_free: Ns,
    cells_sent: u64,
    /// Cells offered while the line was down (dropped, never delivered).
    cells_dropped: u64,
    /// Outage drops per VCI (few circuits share one line; linear scan).
    /// Drained by [`Link::take_dropped_by_vci`] so the control plane can
    /// reclaim the lost cells' credits and attribute the loss.
    dropped_by_vci: Vec<(Vci, u64)>,
    /// The line is down until this instant: cells whose serialization
    /// would start before it are lost on the wire (a flapping link or a
    /// pulled line card). `0` means the link has never been down.
    outage_until: Ns,
    train: Rc<RefCell<Train>>,
    handler: SharedHandler,
    /// Scheduling lane for delivery events. Lane 0 (default) is the
    /// shared FIFO lane; the sharded executor gives every inter-switch
    /// trunk link a private lane so boundary-injected cells land in the
    /// same canonical order the single-threaded run produces.
    lane: Lane,
    /// When set, this link's transmit side sits on a shard boundary:
    /// accepted cells are accounted here (serialization, outage drops,
    /// counters) but diverted to the export buffer instead of being
    /// scheduled — the receiving shard injects them after the barrier.
    export: Option<ExportBuffer>,
}

impl Link {
    /// Creates a link at `rate_bps` bits/second with the given one-way
    /// propagation delay, feeding `sink`.
    pub fn new(rate_bps: u64, prop_delay: Ns, sink: SinkRef) -> Self {
        assert!(rate_bps > 0, "link rate must be positive");
        let train = Rc::new(RefCell::new(Train {
            cells: VecDeque::new(),
            burst: Vec::new(),
            scheduled: false,
            batch: false,
        }));
        let handler: SharedHandler = {
            let train = train.clone();
            let sink = sink.clone();
            Rc::new(RefCell::new(move |sim: &mut Simulator| -> Option<Ns> {
                let now = sim.now();
                let batch = train.borrow().batch;
                if batch {
                    // Drain every cell that has arrived by now into the
                    // reusable burst buffer, release the borrow, then hand
                    // the whole train segment over in one call.
                    let mut burst = {
                        let mut t = train.borrow_mut();
                        let mut burst = std::mem::take(&mut t.burst);
                        while t.cells.front().is_some_and(|&(at, _)| at <= now) {
                            burst.push(t.cells.pop_front().expect("front checked"));
                        }
                        burst
                    };
                    sink.borrow_mut().deliver_batch(sim, &mut burst);
                    burst.clear();
                    let mut t = train.borrow_mut();
                    t.burst = burst;
                    // Cells accepted since this event was scheduled arrive
                    // later; chase them with one event at the train's tail.
                    match t.cells.back() {
                        Some(&(tail, _)) => Some(tail),
                        None => {
                            t.scheduled = false;
                            None
                        }
                    }
                } else {
                    // Per-cell lane: this event is exactly one cell.
                    let (at, cell) = train
                        .borrow_mut()
                        .cells
                        .pop_front()
                        .expect("one queued cell per delivery event");
                    debug_assert_eq!(at, now, "per-cell delivery fires at its arrival time");
                    sink.borrow_mut().deliver(sim, cell);
                    None
                }
            }))
        };
        Link {
            rate_bps,
            prop_delay,
            sink,
            next_free: 0,
            cells_sent: 0,
            cells_dropped: 0,
            dropped_by_vci: Vec::new(),
            outage_until: 0,
            train,
            handler,
            lane: 0,
            export: None,
        }
    }

    /// Assigns the scheduling lane delivery events ride on. Called once
    /// at wiring time (before any traffic); lane 0 is the default.
    pub fn set_lane(&mut self, lane: Lane) {
        self.lane = lane;
    }

    /// The delivery-event scheduling lane.
    pub fn lane(&self) -> Lane {
        self.lane
    }

    /// Marks this link's transmit side as a shard boundary: accepted
    /// cells are pushed to `buf` instead of being scheduled for local
    /// delivery. The executor drains `buf` at each epoch barrier.
    pub fn set_export(&mut self, buf: ExportBuffer) {
        self.export = Some(buf);
    }

    /// The configured line rate in bits per second.
    pub fn rate_bps(&self) -> u64 {
        self.rate_bps
    }

    /// Serialization time of one cell on this link.
    pub fn cell_time(&self) -> Ns {
        tx_time(CELL_SIZE, self.rate_bps)
    }

    /// Total cells handed to this link so far.
    pub fn cells_sent(&self) -> u64 {
        self.cells_sent
    }

    /// Cells lost to outage windows (see [`Link::set_outage_until`]).
    pub fn cells_dropped(&self) -> u64 {
        self.cells_dropped
    }

    /// Outage drops per VCI since the last call, drained in VCI order.
    pub fn take_dropped_by_vci(&mut self) -> Vec<(Vci, u64)> {
        let mut drops = std::mem::take(&mut self.dropped_by_vci);
        drops.sort_unstable();
        drops
    }

    /// Takes the line down until `until`: cells whose serialization
    /// would start before that instant are dropped and counted in
    /// [`Link::cells_dropped`]. A later call may extend (never shorten)
    /// the outage; cells already accepted stay in flight — an outage
    /// cuts the line, it does not un-send what already left.
    pub fn set_outage_until(&mut self, until: Ns) {
        self.outage_until = self.outage_until.max(until);
    }

    /// Earliest time a newly offered cell would start serializing.
    pub fn next_free(&self) -> Ns {
        self.next_free
    }

    /// Current transmit backlog: how long a cell offered now would wait
    /// before starting to serialize.
    pub fn backlog(&self, now: Ns) -> Ns {
        self.next_free.saturating_sub(now)
    }

    /// Queues `cell` for transmission; delivery to the sink is scheduled
    /// after queueing + serialization + propagation.
    ///
    /// Returns the absolute arrival time at the sink. The generic path
    /// allocates nothing per cell: the delivery event is the link's
    /// shared handler, and on the batched lane a whole train rides a
    /// single event.
    pub fn send(&mut self, sim: &mut Simulator, cell: Cell) -> Ns {
        let start = self.next_free.max(sim.now());
        if start < self.outage_until {
            // The line is down when this cell would hit it: lost on the
            // wire. Mid-frame losses are exactly what reassembly's
            // fallback path must absorb.
            self.cells_dropped += 1;
            match self
                .dropped_by_vci
                .iter_mut()
                .find(|(v, _)| *v == cell.vci())
            {
                Some((_, n)) => *n += 1,
                None => self.dropped_by_vci.push((cell.vci(), 1)),
            }
            return start;
        }
        let done = start + self.cell_time();
        self.next_free = done;
        self.cells_sent += 1;
        let arrival = done + self.prop_delay;
        if let Some(export) = &self.export {
            // Shard boundary: the receiving end lives in another region.
            // All transmit-side accounting above is done; the cell waits
            // in the export buffer for the next barrier exchange.
            export.borrow_mut().push((arrival, cell));
            return arrival;
        }
        self.enqueue_delivery(sim, arrival, cell);
        arrival
    }

    /// Queues an accepted cell on the delivery train and schedules its
    /// delivery event — the half of [`Link::send`] downstream of the
    /// wire, shared by the local path and boundary injection.
    fn enqueue_delivery(&mut self, sim: &mut Simulator, arrival: Ns, cell: Cell) {
        let mut t = self.train.borrow_mut();
        if t.cells.is_empty() && !t.scheduled {
            // A new train starts: sample the sink's lane preference.
            t.batch = self.sink.borrow().batch_capable();
        }
        t.cells.push_back((arrival, cell));
        let need_event = if t.batch {
            !std::mem::replace(&mut t.scheduled, true)
        } else {
            true
        };
        drop(t);
        if need_event {
            sim.schedule_shared_at_on(self.lane, arrival, self.handler.clone());
        }
    }

    /// Injects a cell sealed by the transmitting shard: queues it for
    /// delivery exactly as if [`Link::send`] had accepted it locally at
    /// the same instant. Called by the sharded executor right after an
    /// epoch barrier, on the receiving shard's replica of the link.
    ///
    /// # Panics
    ///
    /// Panics when `arrival` precedes the receiving shard's current
    /// epoch — conservative lookahead guarantees every boundary cell
    /// arrives at or after the barrier it crosses, so an early cell
    /// means the epoch length exceeded the link's latency bound.
    pub fn inject(&mut self, sim: &mut Simulator, arrival: Ns, cell: Cell) {
        assert!(
            arrival >= sim.now(),
            "inter-shard cell timestamped before the receiving epoch: \
             arrival={} epoch={}",
            arrival,
            sim.now()
        );
        self.enqueue_delivery(sim, arrival, cell);
    }

    /// Sends a burst of back-to-back cells, returning the arrival time of
    /// the last one. Equivalent to calling [`Link::send`] in a loop.
    pub fn send_burst(&mut self, sim: &mut Simulator, cells: impl IntoIterator<Item = Cell>) -> Ns {
        let mut last = sim.now();
        for cell in cells {
            last = self.send(sim, cell);
        }
        last
    }
}

/// A sink that records arrivals — the workhorse test/measurement probe.
///
/// Batch-capable: a busy link delivers whole cell trains to it in one
/// event, recording the same `(arrival, cell)` pairs the per-cell lane
/// would produce.
#[derive(Default)]
pub struct CaptureSink {
    /// `(arrival time, cell)` pairs in delivery order.
    pub arrivals: Vec<(Ns, Cell)>,
}

impl CaptureSink {
    /// Creates an empty capture sink wrapped for sharing.
    pub fn shared() -> Rc<RefCell<CaptureSink>> {
        Rc::new(RefCell::new(CaptureSink::default()))
    }
}

impl CellSink for CaptureSink {
    fn deliver(&mut self, sim: &mut Simulator, cell: Cell) {
        self.arrivals.push((sim.now(), cell));
    }

    fn deliver_batch(&mut self, _sim: &mut Simulator, cells: &mut Vec<(Ns, Cell)>) {
        self.arrivals.append(cells);
    }

    fn batch_capable(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MBPS_100: u64 = 100_000_000;

    #[test]
    fn single_cell_timing() {
        let sink = CaptureSink::shared();
        let mut link = Link::new(MBPS_100, 500, sink.clone());
        let mut sim = Simulator::new();
        let arrival = link.send(&mut sim, Cell::new(7));
        assert_eq!(arrival, 4_240 + 500);
        sim.run();
        let got = sink.borrow();
        assert_eq!(got.arrivals.len(), 1);
        assert_eq!(got.arrivals[0].0, 4_740);
        assert_eq!(got.arrivals[0].1.vci(), 7);
    }

    #[test]
    fn back_to_back_cells_queue() {
        let sink = CaptureSink::shared();
        let mut link = Link::new(MBPS_100, 0, sink.clone());
        let mut sim = Simulator::new();
        for _ in 0..3 {
            link.send(&mut sim, Cell::new(1));
        }
        sim.run();
        let times: Vec<Ns> = sink.borrow().arrivals.iter().map(|(t, _)| *t).collect();
        assert_eq!(times, vec![4_240, 8_480, 12_720]);
    }

    #[test]
    fn idle_link_restarts_at_now() {
        let sink = CaptureSink::shared();
        let mut link = Link::new(MBPS_100, 0, sink.clone());
        let mut sim = Simulator::new();
        link.send(&mut sim, Cell::new(1));
        sim.run();
        // Much later, the link is idle again: no stale backlog.
        sim.run_until(1_000_000);
        assert_eq!(link.backlog(sim.now()), 0);
        link.send(&mut sim, Cell::new(2));
        sim.run();
        assert_eq!(sink.borrow().arrivals[1].0, 1_000_000 + 4_240);
    }

    #[test]
    fn fifo_order_preserved() {
        let sink = CaptureSink::shared();
        let mut link = Link::new(MBPS_100, 123, sink.clone());
        let mut sim = Simulator::new();
        for vci in 0..20u16 {
            link.send(&mut sim, Cell::new(vci));
        }
        sim.run();
        let vcis: Vec<u16> = sink
            .borrow()
            .arrivals
            .iter()
            .map(|(_, c)| c.vci())
            .collect();
        assert_eq!(vcis, (0..20).collect::<Vec<_>>());
    }

    #[test]
    fn backlog_reflects_queue() {
        let sink = CaptureSink::shared();
        let mut link = Link::new(MBPS_100, 0, sink);
        let mut sim = Simulator::new();
        for _ in 0..10 {
            link.send(&mut sim, Cell::new(1));
        }
        assert_eq!(link.backlog(0), 10 * 4_240);
        assert_eq!(link.cells_sent(), 10);
    }

    #[test]
    #[should_panic(expected = "link rate must be positive")]
    fn zero_rate_rejected() {
        let sink = CaptureSink::shared();
        let _ = Link::new(0, 0, sink);
    }

    /// A sink on the default (per-cell) lane recording delivery clocks.
    #[derive(Default)]
    struct ClockProbe(Vec<(Ns, u16)>);
    impl CellSink for ClockProbe {
        fn deliver(&mut self, sim: &mut Simulator, cell: Cell) {
            self.0.push((sim.now(), cell.vci()));
        }
    }

    #[test]
    fn batched_and_per_cell_lanes_record_identical_arrivals() {
        let drive = |probe: SinkRef| {
            let mut link = Link::new(MBPS_100, 77, probe);
            let mut sim = Simulator::new();
            for burst in 0..5u16 {
                for i in 0..=burst {
                    link.send(&mut sim, Cell::new(burst * 10 + i));
                }
                sim.run_until(sim.now() + 3_000);
            }
            sim.run();
            (sim.events_executed(), sim.now())
        };
        let probe = Rc::new(RefCell::new(ClockProbe::default()));
        let (per_cell_events, per_cell_clock) = drive(probe.clone());
        let capture = CaptureSink::shared();
        let (batch_events, batch_clock) = drive(capture.clone());

        let a: Vec<(Ns, u16)> = probe.borrow().0.clone();
        let b: Vec<(Ns, u16)> = capture
            .borrow()
            .arrivals
            .iter()
            .map(|(t, c)| (*t, c.vci()))
            .collect();
        assert_eq!(a, b, "the two lanes must record identical arrival traces");
        assert_eq!(per_cell_clock, batch_clock, "same final clock");
        assert!(
            batch_events < per_cell_events,
            "batching must collapse events: {batch_events} vs {per_cell_events}"
        );
    }

    #[test]
    fn outage_window_drops_and_counts() {
        let sink = CaptureSink::shared();
        let mut link = Link::new(MBPS_100, 0, sink.clone());
        let mut sim = Simulator::new();
        link.send(&mut sim, Cell::new(1)); // in flight before the cut
        link.set_outage_until(100_000);
        for _ in 0..3 {
            link.send(&mut sim, Cell::new(2)); // lost on the wire
        }
        sim.run_until(200_000);
        link.send(&mut sim, Cell::new(3)); // line is back
        sim.run();
        let vcis: Vec<u16> = sink
            .borrow()
            .arrivals
            .iter()
            .map(|(_, c)| c.vci())
            .collect();
        assert_eq!(vcis, vec![1, 3], "outage cells never arrive");
        assert_eq!(link.cells_dropped(), 3);
        assert_eq!(link.cells_sent(), 2, "only wire-borne cells count as sent");
        // A shorter outage never shortens an existing one.
        link.set_outage_until(150_000);
        assert_eq!(link.cells_dropped(), 3);
        link.send(&mut sim, Cell::new(4));
        sim.run();
        assert_eq!(sink.borrow().arrivals.len(), 3);
    }

    #[test]
    fn send_burst_matches_individual_sends() {
        let sink_a = CaptureSink::shared();
        let mut link_a = Link::new(MBPS_100, 10, sink_a.clone());
        let sink_b = CaptureSink::shared();
        let mut link_b = Link::new(MBPS_100, 10, sink_b.clone());
        let mut sim_a = Simulator::new();
        let mut sim_b = Simulator::new();
        let last = link_a.send_burst(&mut sim_a, (0..8u16).map(Cell::new));
        let mut last_b = 0;
        for v in 0..8u16 {
            last_b = link_b.send(&mut sim_b, Cell::new(v));
        }
        assert_eq!(last, last_b);
        sim_a.run();
        sim_b.run();
        assert_eq!(sink_a.borrow().arrivals, sink_b.borrow().arrivals);
    }

    #[test]
    fn exported_cells_reinjected_match_the_local_delivery_trace() {
        // The shard boundary round trip: a transmit link with an export
        // buffer captures (arrival, cell) pairs; injecting them into a
        // fresh replica of the link reproduces the local trace exactly.
        let local_sink = CaptureSink::shared();
        let mut local = Link::new(MBPS_100, 500, local_sink.clone());
        let mut local_sim = Simulator::new();
        for vci in 0..6u16 {
            local.send(&mut local_sim, Cell::new(vci));
        }
        local_sim.run();

        let tx_sink = CaptureSink::shared();
        let mut tx = Link::new(MBPS_100, 500, tx_sink.clone());
        let buf: ExportBuffer = Rc::new(RefCell::new(Vec::new()));
        tx.set_export(buf.clone());
        let mut tx_sim = Simulator::new();
        for vci in 0..6u16 {
            tx.send(&mut tx_sim, Cell::new(vci));
        }
        tx_sim.run();
        assert!(tx_sink.borrow().arrivals.is_empty(), "nothing local");
        assert_eq!(tx.cells_sent(), 6, "transmit accounting still happens");

        let rx_sink = CaptureSink::shared();
        let mut rx = Link::new(MBPS_100, 500, rx_sink.clone());
        let mut rx_sim = Simulator::new();
        for (arrival, cell) in buf.borrow_mut().drain(..) {
            rx.inject(&mut rx_sim, arrival, cell);
        }
        rx_sim.run();
        assert_eq!(rx_sink.borrow().arrivals, local_sink.borrow().arrivals);
    }

    #[test]
    #[should_panic(expected = "inter-shard cell timestamped before the receiving epoch")]
    fn inject_rejects_cells_from_before_the_current_epoch() {
        // The barrier-protocol invariant: conservative lookahead means a
        // shard can never receive a cell timestamped before the epoch
        // boundary its clock is parked on. An early cell is a protocol
        // violation and must die loudly, not silently reorder history.
        let sink = CaptureSink::shared();
        let mut link = Link::new(MBPS_100, 0, sink);
        let mut sim = Simulator::new();
        sim.run_until(50_000); // the clock sits on an epoch boundary
        link.inject(&mut sim, 49_999, Cell::new(1));
    }

    #[test]
    fn batch_lane_delivers_nothing_early_under_run_until() {
        let sink = CaptureSink::shared();
        let mut link = Link::new(MBPS_100, 0, sink.clone());
        let mut sim = Simulator::new();
        for _ in 0..10 {
            link.send(&mut sim, Cell::new(1)); // arrivals 4240, 8480, …
        }
        sim.run_until(9_000);
        // Whatever has been delivered by t=9000 must have arrived by then.
        assert!(sink.borrow().arrivals.iter().all(|&(t, _)| t <= 9_000));
        sim.run();
        assert_eq!(sink.borrow().arrivals.len(), 10);
    }
}
