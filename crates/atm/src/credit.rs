//! Credit-based per-VC flow control.
//!
//! Admission control (the signalling ledgers) bounds *average* rates;
//! it cannot stop a transient burst from growing a switch queue until
//! cells drop. Credits close that gap by construction: the consuming
//! endpoint grants a window of `window` cells, the producer spends one
//! credit per cell **before** it transmits, and the consumer returns
//! each credit as the cell drains off the wire. A producer with an
//! empty window holds its whole cell-train at the source, so the number
//! of this circuit's cells anywhere between producer and consumer —
//! link trains, switch queues, fabric crossings — never exceeds the
//! window. Σ(windows through a queue) is therefore a hard bound on that
//! queue's depth, independent of offered load.
//!
//! Producers acquire at *frame* granularity (a whole AAL5 frame's worth
//! of cells or nothing), so a stall never strands a half-segmented
//! frame in the fabric; see `Camera::send_frame`.
//!
//! Cells dropped in the fabric (outage windows, or overflow on circuits
//! that opted out of credits) never reach the consumer, so their
//! credits would leak and wedge the producer. Drop sites count drops
//! per in-VCI ([`crate::switch::Switch::take_dropped_by_vci`],
//! [`crate::link::Link::take_dropped_by_vci`]) and the control plane
//! returns them via [`CreditWindow::reclaim`] at each congestion epoch.
//! Conservation is then exact and checkable:
//! `consumed == in_flight + returned + reclaimed`.

use std::cell::RefCell;
use std::rc::Rc;

use pegasus_sim::engine::Simulator;
use pegasus_sim::time::Ns;

use crate::cell::{Cell, Vci};
use crate::link::{CellSink, SinkRef};

/// A shared handle on one circuit's credit window: the producer holds
/// one clone (to acquire), the consumer-side [`CreditSink`] another (to
/// release), the control plane a third (to reclaim and read stats).
pub type CreditRef = Rc<RefCell<CreditWindow>>;

/// One virtual circuit's credit state.
///
/// All counters are cumulative cell counts; the invariant
/// [`CreditWindow::conserved`] ties them together.
#[derive(Debug)]
pub struct CreditWindow {
    /// Credits granted by the consumer: the hard cap on in-flight cells.
    window: u64,
    /// Cells currently between producer and consumer.
    in_flight: u64,
    /// Total credits ever spent ([`CreditWindow::try_acquire`]).
    consumed: u64,
    /// Total credits returned by the consumer ([`CreditWindow::release`]).
    returned: u64,
    /// Credits reclaimed for cells the fabric dropped
    /// ([`CreditWindow::reclaim`]).
    reclaimed: u64,
    /// Failed acquires, cumulative (each is one whole frame held back).
    stalls: u64,
    /// Failed acquires since the last [`CreditWindow::take_epoch_stalls`].
    epoch_stalls: u64,
    /// High-water mark of `in_flight`.
    peak_in_flight: u64,
}

impl CreditWindow {
    /// A window of `window` cells, shared and empty of traffic.
    pub fn shared(window: u64) -> CreditRef {
        Rc::new(RefCell::new(CreditWindow {
            window,
            in_flight: 0,
            consumed: 0,
            returned: 0,
            reclaimed: 0,
            stalls: 0,
            epoch_stalls: 0,
            peak_in_flight: 0,
        }))
    }

    /// Spends `n` credits if the window has room for all of them;
    /// otherwise spends nothing and records a stall. All-or-nothing is
    /// what gives frame granularity: a producer asks for a whole AAL5
    /// frame's cells at once.
    pub fn try_acquire(&mut self, n: u64) -> bool {
        if self.in_flight + n <= self.window {
            self.in_flight += n;
            self.consumed += n;
            self.peak_in_flight = self.peak_in_flight.max(self.in_flight);
            true
        } else {
            self.stalls += 1;
            self.epoch_stalls += 1;
            false
        }
    }

    /// Returns `n` credits as cells drain at the consumer.
    pub fn release(&mut self, n: u64) {
        debug_assert!(n <= self.in_flight, "released more credits than in flight");
        self.in_flight = self.in_flight.saturating_sub(n);
        self.returned += n;
    }

    /// Returns `n` credits for cells the fabric dropped (they will never
    /// reach the consumer, so [`CreditWindow::release`] can't).
    pub fn reclaim(&mut self, n: u64) {
        debug_assert!(n <= self.in_flight, "reclaimed more credits than in flight");
        self.in_flight = self.in_flight.saturating_sub(n);
        self.reclaimed += n;
    }

    /// The conservation invariant: every credit ever spent is either
    /// still in flight, returned by the consumer, or reclaimed after a
    /// drop.
    pub fn conserved(&self) -> bool {
        self.consumed == self.in_flight + self.returned + self.reclaimed
    }

    /// The granted window, in cells.
    pub fn window(&self) -> u64 {
        self.window
    }

    /// Cells currently in flight.
    pub fn in_flight(&self) -> u64 {
        self.in_flight
    }

    /// Cumulative failed acquires.
    pub fn stalls(&self) -> u64 {
        self.stalls
    }

    /// Cumulative credits reclaimed after fabric drops.
    pub fn reclaimed(&self) -> u64 {
        self.reclaimed
    }

    /// High-water mark of in-flight cells (always `<=` the window).
    pub fn peak_in_flight(&self) -> u64 {
        self.peak_in_flight
    }

    /// Failed acquires since the last call; resets the epoch counter.
    /// This is the congestion signal the QoS control loop samples.
    pub fn take_epoch_stalls(&mut self) -> u64 {
        std::mem::take(&mut self.epoch_stalls)
    }
}

/// The consumer side: wraps an endpoint's receive sink and returns one
/// credit per delivered cell on every registered circuit, before
/// forwarding the cell unchanged.
///
/// Registration is by *destination* VCI (the label the cell carries on
/// its final hop). A handful of circuits terminate at any one endpoint,
/// so the table is a linear scan.
pub struct CreditSink {
    inner: SinkRef,
    /// `(dst_vci, window)` for every credited circuit ending here.
    windows: Vec<(Vci, CreditRef)>,
}

impl CreditSink {
    /// Wraps `inner`, sharing the result as a [`SinkRef`].
    pub fn wrap(inner: SinkRef) -> Rc<RefCell<CreditSink>> {
        Rc::new(RefCell::new(CreditSink {
            inner,
            windows: Vec::new(),
        }))
    }

    /// Registers `window` for cells arriving with `dst_vci`.
    pub fn register(&mut self, dst_vci: Vci, window: CreditRef) {
        debug_assert!(
            self.windows.iter().all(|(v, _)| *v != dst_vci),
            "duplicate credit registration for VCI {dst_vci}"
        );
        self.windows.push((dst_vci, window));
    }

    fn credit_for(&self, vci: Vci) -> Option<&CreditRef> {
        self.windows.iter().find(|(v, _)| *v == vci).map(|(_, w)| w)
    }
}

impl CellSink for CreditSink {
    fn deliver(&mut self, sim: &mut Simulator, cell: Cell) {
        if let Some(w) = self.credit_for(cell.vci()) {
            w.borrow_mut().release(1);
        }
        self.inner.borrow_mut().deliver(sim, cell);
    }

    fn deliver_batch(&mut self, sim: &mut Simulator, cells: &mut Vec<(Ns, Cell)>) {
        for (_, cell) in cells.iter() {
            if let Some(w) = self.credit_for(cell.vci()) {
                w.borrow_mut().release(1);
            }
        }
        self.inner.borrow_mut().deliver_batch(sim, cells);
    }

    /// Credit bookkeeping reads no clocks, so batching is safe exactly
    /// when the wrapped sink says it is.
    fn batch_capable(&self) -> bool {
        self.inner.borrow().batch_capable()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::CaptureSink;

    #[test]
    fn acquire_is_all_or_nothing_and_bounded() {
        let w = CreditWindow::shared(10);
        assert!(w.borrow_mut().try_acquire(6));
        assert!(!w.borrow_mut().try_acquire(5), "6+5 exceeds the window");
        assert_eq!(w.borrow().in_flight(), 6, "failed acquire spent nothing");
        assert!(w.borrow_mut().try_acquire(4));
        assert_eq!(w.borrow().in_flight(), 10);
        assert_eq!(w.borrow().stalls(), 1);
        assert!(w.borrow().conserved());
    }

    #[test]
    fn release_and_reclaim_conserve() {
        let w = CreditWindow::shared(8);
        assert!(w.borrow_mut().try_acquire(8));
        w.borrow_mut().release(5);
        w.borrow_mut().reclaim(3);
        let w = w.borrow();
        assert_eq!(w.in_flight(), 0);
        assert!(w.conserved());
        assert_eq!(w.peak_in_flight(), 8);
    }

    #[test]
    fn epoch_stalls_reset_but_cumulative_stand() {
        let w = CreditWindow::shared(1);
        assert!(w.borrow_mut().try_acquire(1));
        assert!(!w.borrow_mut().try_acquire(1));
        assert!(!w.borrow_mut().try_acquire(1));
        assert_eq!(w.borrow_mut().take_epoch_stalls(), 2);
        assert_eq!(w.borrow_mut().take_epoch_stalls(), 0);
        assert_eq!(w.borrow().stalls(), 2);
    }

    #[test]
    fn credit_sink_releases_only_registered_vcis() {
        let mut sim = Simulator::new();
        let capture = CaptureSink::shared();
        let sink = CreditSink::wrap(capture.clone());
        let w = CreditWindow::shared(4);
        sink.borrow_mut().register(7, w.clone());
        assert!(w.borrow_mut().try_acquire(2));

        let mine = Cell::new(7);
        let other = Cell::new(9);
        sink.borrow_mut().deliver(&mut sim, mine.clone());
        sink.borrow_mut().deliver(&mut sim, other);
        assert_eq!(w.borrow().in_flight(), 1, "one credit back for VCI 7");

        let mut batch = vec![(0, mine)];
        sink.borrow_mut().deliver_batch(&mut sim, &mut batch);
        assert_eq!(w.borrow().in_flight(), 0);
        assert!(w.borrow().conserved());
        assert_eq!(capture.borrow().arrivals.len(), 3, "all cells forwarded");
    }
}
