//! Credit-based per-VC flow control.
//!
//! Admission control (the signalling ledgers) bounds *average* rates;
//! it cannot stop a transient burst from growing a switch queue until
//! cells drop. Credits close that gap by construction: the consuming
//! endpoint grants a window of `window` cells, the producer spends one
//! credit per cell **before** it transmits, and the consumer returns
//! each credit as the cell drains off the wire. A producer with an
//! empty window holds its whole cell-train at the source, so the number
//! of this circuit's cells anywhere between producer and consumer —
//! link trains, switch queues, fabric crossings — never exceeds the
//! window. Σ(windows through a queue) is therefore a hard bound on that
//! queue's depth, independent of offered load.
//!
//! Producers acquire at *frame* granularity (a whole AAL5 frame's worth
//! of cells or nothing), so a stall never strands a half-segmented
//! frame in the fabric; see `Camera::send_frame`.
//!
//! Cells dropped in the fabric (outage windows, or overflow on circuits
//! that opted out of credits) never reach the consumer, so their
//! credits would leak and wedge the producer. Drop sites count drops
//! per in-VCI ([`crate::switch::Switch::take_dropped_by_vci`],
//! [`crate::link::Link::take_dropped_by_vci`]) and the control plane
//! returns them via [`CreditWindow::reclaim`] at each congestion epoch.
//! Conservation is then exact and checkable:
//! `consumed == in_flight + returned + reclaimed`.
//!
//! Credits returned across a trunk are not instantaneous: a circuit
//! whose producer and consumer sit on different switches models the
//! reverse crossing as a fixed per-spec delay (one trunk cell time plus
//! propagation). The consumer-side [`CreditSink`] records such returns
//! with [`CreditWindow::release_at`] and the producer drains them with
//! [`CreditWindow::try_acquire_at`] — or, when the producer's window
//! lives on another executor shard, the return becomes a sealed
//! [`CreditReturn`] record for the epoch exchange. Because the delay is
//! never smaller than the sharded executor's trunk lookahead, a record
//! always reaches the producer's shard before its `apply_at` tick, and
//! the single-shard and sharded runs agree byte for byte.

use std::cell::RefCell;
use std::rc::Rc;

use pegasus_sim::engine::Simulator;
use pegasus_sim::time::Ns;

use crate::cell::{Cell, Vci};
use crate::link::{CellSink, SinkRef};

/// A shared handle on one circuit's credit window: the producer holds
/// one clone (to acquire), the consumer-side [`CreditSink`] another (to
/// release), the control plane a third (to reclaim and read stats).
pub type CreditRef = Rc<RefCell<CreditWindow>>;

/// A sealed credit-return record: `n` credits for the circuit delivered
/// under `dst_vci`, applicable at virtual time `apply_at`. Produced by
/// a [`CreditSink`] registration in export mode when the circuit's
/// window lives on another executor shard; the owning shard looks the
/// record up by `dst_vci` and applies it with
/// [`CreditWindow::release_at`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CreditReturn {
    /// The destination VCI the cells arrived under (the producer-side
    /// registry key).
    pub dst_vci: Vci,
    /// Virtual time at which the credits reach the producer.
    pub apply_at: Ns,
    /// Number of credits returned.
    pub n: u64,
}

/// Shared buffer a [`CreditSink`] export registration appends
/// [`CreditReturn`] records to; the executor drains it at each epoch
/// boundary into the per-pair mailboxes.
pub type CreditExportBuf = Rc<RefCell<Vec<CreditReturn>>>;

/// One virtual circuit's credit state.
///
/// All counters are cumulative cell counts; the invariant
/// [`CreditWindow::conserved`] ties them together.
#[derive(Debug)]
pub struct CreditWindow {
    /// Credits granted by the consumer: the hard cap on in-flight cells.
    window: u64,
    /// Cells currently between producer and consumer.
    in_flight: u64,
    /// Total credits ever spent ([`CreditWindow::try_acquire`]).
    consumed: u64,
    /// Total credits returned by the consumer ([`CreditWindow::release`]).
    returned: u64,
    /// Credits reclaimed for cells the fabric dropped
    /// ([`CreditWindow::reclaim`]).
    reclaimed: u64,
    /// Failed acquires, cumulative (each is one whole frame held back).
    stalls: u64,
    /// Failed acquires since the last [`CreditWindow::take_epoch_stalls`].
    epoch_stalls: u64,
    /// High-water mark of `in_flight`.
    peak_in_flight: u64,
    /// Returns scheduled but not yet applied: `(apply_at, n)` for
    /// credits still travelling back across a trunk. Entries commute
    /// (each is a pure counter increment), so application order within
    /// a drain does not matter.
    pending: Vec<(Ns, u64)>,
}

impl CreditWindow {
    /// A window of `window` cells, shared and empty of traffic.
    pub fn shared(window: u64) -> CreditRef {
        Rc::new(RefCell::new(CreditWindow {
            window,
            in_flight: 0,
            consumed: 0,
            returned: 0,
            reclaimed: 0,
            stalls: 0,
            epoch_stalls: 0,
            peak_in_flight: 0,
            pending: Vec::new(),
        }))
    }

    /// Spends `n` credits if the window has room for all of them;
    /// otherwise spends nothing and records a stall. All-or-nothing is
    /// what gives frame granularity: a producer asks for a whole AAL5
    /// frame's cells at once.
    pub fn try_acquire(&mut self, n: u64) -> bool {
        if self.in_flight + n <= self.window {
            self.in_flight += n;
            self.consumed += n;
            self.peak_in_flight = self.peak_in_flight.max(self.in_flight);
            true
        } else {
            self.stalls += 1;
            self.epoch_stalls += 1;
            false
        }
    }

    /// Returns `n` credits as cells drain at the consumer.
    pub fn release(&mut self, n: u64) {
        debug_assert!(n <= self.in_flight, "released more credits than in flight");
        self.in_flight = self.in_flight.saturating_sub(n);
        self.returned += n;
    }

    /// Schedules `n` credits to come back at `apply_at`: the consumer
    /// has drained the cells, but the return itself still has a trunk
    /// to cross. The credits count as in flight until
    /// [`CreditWindow::advance_to`] passes `apply_at`.
    pub fn release_at(&mut self, apply_at: Ns, n: u64) {
        self.pending.push((apply_at, n));
    }

    /// Applies every pending return due at or before `now`. The scan is
    /// unordered (`swap_remove`) because pending entries commute.
    pub fn advance_to(&mut self, now: Ns) {
        let mut i = 0;
        while i < self.pending.len() {
            if self.pending[i].0 <= now {
                let (_, n) = self.pending.swap_remove(i);
                self.release(n);
            } else {
                i += 1;
            }
        }
    }

    /// [`CreditWindow::try_acquire`] with the clock attached: applies
    /// the returns that are due first, so a producer never stalls on
    /// credits that have already arrived.
    pub fn try_acquire_at(&mut self, now: Ns, n: u64) -> bool {
        self.advance_to(now);
        self.try_acquire(n)
    }

    /// Returns `n` credits for cells the fabric dropped (they will never
    /// reach the consumer, so [`CreditWindow::release`] can't).
    pub fn reclaim(&mut self, n: u64) {
        debug_assert!(n <= self.in_flight, "reclaimed more credits than in flight");
        self.in_flight = self.in_flight.saturating_sub(n);
        self.reclaimed += n;
    }

    /// The conservation invariant: every credit ever spent is either
    /// still in flight, returned by the consumer, or reclaimed after a
    /// drop.
    pub fn conserved(&self) -> bool {
        self.consumed == self.in_flight + self.returned + self.reclaimed
    }

    /// The granted window, in cells.
    pub fn window(&self) -> u64 {
        self.window
    }

    /// Cells currently in flight.
    pub fn in_flight(&self) -> u64 {
        self.in_flight
    }

    /// Cumulative failed acquires.
    pub fn stalls(&self) -> u64 {
        self.stalls
    }

    /// Cumulative credits reclaimed after fabric drops.
    pub fn reclaimed(&self) -> u64 {
        self.reclaimed
    }

    /// High-water mark of in-flight cells (always `<=` the window).
    pub fn peak_in_flight(&self) -> u64 {
        self.peak_in_flight
    }

    /// Failed acquires since the last call; resets the epoch counter.
    /// This is the congestion signal the QoS control loop samples.
    pub fn take_epoch_stalls(&mut self) -> u64 {
        std::mem::take(&mut self.epoch_stalls)
    }
}

/// How a registered circuit's credits travel back to the producer.
#[derive(Debug)]
enum ReturnPath {
    /// Producer and consumer share a switch: the return is a local
    /// wire, credits come back the instant the cell drains.
    Immediate(CreditRef),
    /// Cross-switch circuit whose window lives in this address space:
    /// credits come back `delay` ns later (one reverse trunk crossing),
    /// parked in the window's pending list until they are due.
    Delayed { window: CreditRef, delay: Ns },
    /// Cross-switch circuit whose producer lives on another executor
    /// shard: the return becomes a [`CreditReturn`] record in `buf`,
    /// shipped through the epoch exchange and applied remotely.
    Export { delay: Ns, buf: CreditExportBuf },
}

/// The consumer side: wraps an endpoint's receive sink and returns one
/// credit per delivered cell on every registered circuit, before
/// forwarding the cell unchanged.
///
/// Registration is by *destination* VCI (the label the cell carries on
/// its final hop). A handful of circuits terminate at any one endpoint,
/// so the table is a linear scan.
pub struct CreditSink {
    inner: SinkRef,
    /// `(dst_vci, return path)` for every credited circuit ending here.
    windows: Vec<(Vci, ReturnPath)>,
}

impl CreditSink {
    /// Wraps `inner`, sharing the result as a [`SinkRef`].
    pub fn wrap(inner: SinkRef) -> Rc<RefCell<CreditSink>> {
        Rc::new(RefCell::new(CreditSink {
            inner,
            windows: Vec::new(),
        }))
    }

    fn push(&mut self, dst_vci: Vci, path: ReturnPath) {
        debug_assert!(
            self.windows.iter().all(|(v, _)| *v != dst_vci),
            "duplicate credit registration for VCI {dst_vci}"
        );
        self.windows.push((dst_vci, path));
    }

    /// Registers `window` for cells arriving with `dst_vci`; credits
    /// return immediately on delivery (same-switch circuits).
    pub fn register(&mut self, dst_vci: Vci, window: CreditRef) {
        self.push(dst_vci, ReturnPath::Immediate(window));
    }

    /// Registers `window` with a fixed return delay (cross-switch
    /// circuits whose producer lives in this address space).
    pub fn register_delayed(&mut self, dst_vci: Vci, window: CreditRef, delay: Ns) {
        self.push(dst_vci, ReturnPath::Delayed { window, delay });
    }

    /// Registers an export-only return path: the producer's window lives
    /// on another shard, so returns become [`CreditReturn`] records in
    /// `buf` for the executor to ship at the next epoch boundary.
    pub fn register_export(&mut self, dst_vci: Vci, delay: Ns, buf: CreditExportBuf) {
        self.push(dst_vci, ReturnPath::Export { delay, buf });
    }

    fn path_for(&self, vci: Vci) -> Option<&ReturnPath> {
        self.windows.iter().find(|(v, _)| *v == vci).map(|(_, p)| p)
    }
}

fn credit_back(path: &ReturnPath, dst_vci: Vci, now: Ns, n: u64) {
    match path {
        ReturnPath::Immediate(w) => w.borrow_mut().release(n),
        ReturnPath::Delayed { window, delay } => window.borrow_mut().release_at(now + delay, n),
        ReturnPath::Export { delay, buf } => buf.borrow_mut().push(CreditReturn {
            dst_vci,
            apply_at: now + delay,
            n,
        }),
    }
}

impl CellSink for CreditSink {
    fn deliver(&mut self, sim: &mut Simulator, cell: Cell) {
        if let Some(path) = self.path_for(cell.vci()) {
            credit_back(path, cell.vci(), sim.now(), 1);
        }
        self.inner.borrow_mut().deliver(sim, cell);
    }

    /// Batch returns coalesce per circuit and stamp the whole train
    /// with the batch's event time (not per-cell arrival times): a
    /// train can span an epoch boundary, and the train-end event time
    /// is the one timestamp both the single-shard and sharded runs
    /// agree on before the next barrier.
    fn deliver_batch(&mut self, sim: &mut Simulator, cells: &mut Vec<(Ns, Cell)>) {
        let now = sim.now();
        for (vci, path) in &self.windows {
            let n = cells.iter().filter(|(_, c)| c.vci() == *vci).count() as u64;
            if n > 0 {
                credit_back(path, *vci, now, n);
            }
        }
        self.inner.borrow_mut().deliver_batch(sim, cells);
    }

    /// Credit bookkeeping reads only the event clock, so batching is
    /// safe exactly when the wrapped sink says it is.
    fn batch_capable(&self) -> bool {
        self.inner.borrow().batch_capable()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::CaptureSink;

    #[test]
    fn acquire_is_all_or_nothing_and_bounded() {
        let w = CreditWindow::shared(10);
        assert!(w.borrow_mut().try_acquire(6));
        assert!(!w.borrow_mut().try_acquire(5), "6+5 exceeds the window");
        assert_eq!(w.borrow().in_flight(), 6, "failed acquire spent nothing");
        assert!(w.borrow_mut().try_acquire(4));
        assert_eq!(w.borrow().in_flight(), 10);
        assert_eq!(w.borrow().stalls(), 1);
        assert!(w.borrow().conserved());
    }

    #[test]
    fn release_and_reclaim_conserve() {
        let w = CreditWindow::shared(8);
        assert!(w.borrow_mut().try_acquire(8));
        w.borrow_mut().release(5);
        w.borrow_mut().reclaim(3);
        let w = w.borrow();
        assert_eq!(w.in_flight(), 0);
        assert!(w.conserved());
        assert_eq!(w.peak_in_flight(), 8);
    }

    #[test]
    fn epoch_stalls_reset_but_cumulative_stand() {
        let w = CreditWindow::shared(1);
        assert!(w.borrow_mut().try_acquire(1));
        assert!(!w.borrow_mut().try_acquire(1));
        assert!(!w.borrow_mut().try_acquire(1));
        assert_eq!(w.borrow_mut().take_epoch_stalls(), 2);
        assert_eq!(w.borrow_mut().take_epoch_stalls(), 0);
        assert_eq!(w.borrow().stalls(), 2);
    }

    #[test]
    fn credit_sink_releases_only_registered_vcis() {
        let mut sim = Simulator::new();
        let capture = CaptureSink::shared();
        let sink = CreditSink::wrap(capture.clone());
        let w = CreditWindow::shared(4);
        sink.borrow_mut().register(7, w.clone());
        assert!(w.borrow_mut().try_acquire(2));

        let mine = Cell::new(7);
        let other = Cell::new(9);
        sink.borrow_mut().deliver(&mut sim, mine.clone());
        sink.borrow_mut().deliver(&mut sim, other);
        assert_eq!(w.borrow().in_flight(), 1, "one credit back for VCI 7");

        let mut batch = vec![(0, mine)];
        sink.borrow_mut().deliver_batch(&mut sim, &mut batch);
        assert_eq!(w.borrow().in_flight(), 0);
        assert!(w.borrow().conserved());
        assert_eq!(capture.borrow().arrivals.len(), 3, "all cells forwarded");
    }

    #[test]
    fn delayed_returns_apply_only_when_due() {
        let w = CreditWindow::shared(2);
        assert!(w.borrow_mut().try_acquire_at(0, 2));
        w.borrow_mut().release_at(100, 1);
        w.borrow_mut().release_at(200, 1);
        // At t=50 nothing is due: both credits still count in flight.
        assert!(!w.borrow_mut().try_acquire_at(50, 1));
        // At t=100 the first return lands; conservation holds throughout.
        assert!(w.borrow_mut().try_acquire_at(100, 1));
        assert!(w.borrow().conserved());
        assert!(!w.borrow_mut().try_acquire_at(150, 1));
        assert!(w.borrow_mut().try_acquire_at(200, 1));
        assert_eq!(w.borrow().in_flight(), 2);
        assert!(w.borrow().conserved());
    }

    #[test]
    fn delayed_sink_parks_returns_until_due() {
        let mut sim = Simulator::new();
        let capture = CaptureSink::shared();
        let sink = CreditSink::wrap(capture.clone());
        let w = CreditWindow::shared(4);
        sink.borrow_mut().register_delayed(7, w.clone(), 50);
        assert!(w.borrow_mut().try_acquire(2));

        sink.borrow_mut().deliver(&mut sim, Cell::new(7));
        assert_eq!(w.borrow().in_flight(), 2, "return still crossing the trunk");
        assert!(!w.borrow_mut().try_acquire_at(49, 3));
        assert!(w.borrow_mut().try_acquire_at(50, 3), "due return applied");
        assert!(w.borrow().conserved());
    }

    #[test]
    fn export_sink_seals_coalesced_records() {
        let mut sim = Simulator::new();
        let capture = CaptureSink::shared();
        let sink = CreditSink::wrap(capture.clone());
        let buf: CreditExportBuf = Rc::new(RefCell::new(Vec::new()));
        sink.borrow_mut().register_export(7, 40, buf.clone());

        let mut batch = vec![(0, Cell::new(7)), (1, Cell::new(7)), (2, Cell::new(9))];
        sink.borrow_mut().deliver_batch(&mut sim, &mut batch);
        sink.borrow_mut().deliver(&mut sim, Cell::new(7));
        let records = buf.borrow().clone();
        assert_eq!(
            records,
            vec![
                CreditReturn {
                    dst_vci: 7,
                    apply_at: 40,
                    n: 2
                },
                CreditReturn {
                    dst_vci: 7,
                    apply_at: 40,
                    n: 1
                },
            ],
            "one coalesced record per batch, unregistered VCI ignored"
        );
        assert_eq!(capture.borrow().arrivals.len(), 4, "all cells forwarded");
    }
}
