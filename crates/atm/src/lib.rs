//! ATM network substrate for the Pegasus reproduction.
//!
//! Section 2 of the paper builds the whole Pegasus architecture on an ATM
//! network: Fairisle/Rattlesnake switches interconnect workstations,
//! multimedia devices, and servers; AAL5 frames carry video tiles and audio
//! cells; signalling establishes per-connection virtual circuits with QoS.
//!
//! This crate models all of that:
//!
//! * [`cell`] — the 53-byte ATM cell with a real header layout.
//! * [`crc`] — CRC-32 as used by the AAL5 trailer.
//! * [`credit`] — credit-based per-VC flow control: consumer-granted
//!   windows that bound every queue by construction.
//! * [`aal5`] — AAL5 CPCS framing, segmentation and reassembly.
//! * [`link`] — point-to-point links with serialization and propagation
//!   delay, driven by the discrete-event engine.
//! * [`switch`] — output-queued cell switches with VCI translation.
//! * [`signalling`] — QoS descriptors, connection setup and admission
//!   control (the "latency guarantees for interactive multimedia data").
//! * [`network`] — a topology builder that wires endpoints and switches
//!   and routes virtual circuits end to end.

pub mod aal5;
pub mod cell;
pub mod crc;
pub mod credit;
pub mod link;
pub mod network;
pub mod signalling;
pub mod switch;

pub use aal5::{Aal5Error, Reassembler, Segmenter};
pub use cell::{Cell, Vci, CELL_SIZE, PAYLOAD_SIZE};
pub use credit::{CreditRef, CreditSink, CreditWindow};
pub use link::{CellSink, Link, SinkRef};
pub use network::{EndpointId, Network, VcHandle};
pub use signalling::{AdmissionError, QosSpec, ServiceClass};
pub use switch::Switch;
