//! AAL5 framing: CPCS-PDU construction, segmentation and reassembly.
//!
//! The ATM camera packs tiles "into the payload of an AAL5 frame together
//! with a trailer" (§2.1). AAL5 appends a pad and an 8-byte CPCS trailer —
//! CPCS-UU (1 byte), CPI (1 byte), Length (2 bytes), CRC-32 (4 bytes) — so
//! that the padded PDU is a multiple of 48 bytes, then slices it into cell
//! payloads. The final cell of a frame is marked with the AAL-user bit in
//! the cell header's PTI field.
//!
//! # Zero-copy lane
//!
//! Two segmentation paths produce bit-identical cell streams:
//!
//! * [`Segmenter::segment`] — the copying reference path: materialise the
//!   padded PDU, copy 48-byte chunks into owned cells.
//! * [`Segmenter::segment_frame`] — scatter-gather over an arena
//!   [`FrameView`]: every full 48-byte chunk of the frame becomes a
//!   view-payload cell (refcount bump, no copy); only the tail — the
//!   final partial chunk plus pad and trailer, at most two cells — is
//!   synthesised inline, with the CRC folded incrementally over the
//!   frame bytes in place.
//!
//! On the receive side [`Reassembler::push_frame`] undoes the split
//! without copying: consecutive view cells from one buffer are stitched
//! back into a single [`FrameView`] of the *original* frame buffer (the
//! single-address-space argument: sender and receiver share the
//! storage), verified against the inline tail; any irregularity — an
//! inline or non-contiguous cell, a length mismatch, a failed tail
//! comparison, a nonzero pad or CPI byte — falls back to materialising
//! the PDU and running the exact copying-path validation, CRC and all.
//!
//! # Trust boundary
//!
//! The fast path does *not* recompute the CRC-32 over the stitched
//! view: the arena buffer is immutable and shared between sender and
//! receiver, so the body bytes are provably the bytes the segmenter
//! summed — recomputing would only re-verify memory the simulator
//! already guarantees, at ~100× the cost of every copy this module
//! eliminates. Every byte of the inline tail that is reconstructible is
//! checked (frame remainder against the buffer, zero pad, zero CPI);
//! the CPCS-UU octet, the stored CRC field, and the length field (to
//! the extent it stays consistent with the cell count, the pad-zero
//! check and the buffer bounds) are carried on trust. The guarantee
//! this buys is *prefix integrity*, not trailer integrity: an accepted
//! fast-path frame is always byte-for-byte a prefix of the producer's
//! frame at the trailer's claimed length — never garbage — but a
//! hand-tampered tail cell (e.g. a length field flipped to a smaller
//! value whose displaced frame bytes happen to be zero) can be accepted
//! truncated where the copying path's CRC would reject. Body cells
//! cannot be tampered at all: mutating a view cell goes through
//! [`Cell::payload_mut`]'s copy-on-write, which materialises it and
//! forces the full CRC fallback. Nothing in the simulator flips inline
//! payload bytes in flight (faults drop or delay cells, links and
//! switches never write payloads), so in-sim the fast path delivers
//! exactly what the copying path would; the residual divergence is
//! reachable only by constructing corrupted cells by hand, and the
//! corruption property test pins the prefix guarantee for that case.

use pegasus_sim::arena::FrameView;
use std::ops::Deref;

use crate::cell::{Cell, Vci, PAYLOAD_SIZE};
use crate::crc;

/// Size of the CPCS-PDU trailer in bytes.
pub const TRAILER_SIZE: usize = 8;

/// Largest payload a single CPCS-PDU may carry (16-bit length field).
pub const MAX_FRAME: usize = 65_535;

/// Errors surfaced by AAL5 reassembly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Aal5Error {
    /// The CRC-32 in the trailer did not match the received PDU.
    BadCrc,
    /// The length field was inconsistent with the number of cells received.
    BadLength,
    /// A frame exceeded [`MAX_FRAME`] bytes and cannot be segmented.
    FrameTooLarge,
}

impl std::fmt::Display for Aal5Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Aal5Error::BadCrc => write!(f, "AAL5 CRC-32 mismatch"),
            Aal5Error::BadLength => write!(f, "AAL5 length field inconsistent"),
            Aal5Error::FrameTooLarge => write!(f, "frame exceeds AAL5 maximum"),
        }
    }
}

impl std::error::Error for Aal5Error {}

/// Segments frames into cells (the sending half of AAL5).
///
/// # Examples
///
/// ```
/// use pegasus_atm::aal5::{Segmenter, Reassembler};
///
/// let cells = Segmenter::new(7).segment(b"tile data").unwrap();
/// let mut r = Reassembler::new();
/// let mut out = None;
/// for cell in cells {
///     if let Some(res) = r.push(&cell) {
///         out = Some(res.unwrap());
///     }
/// }
/// assert_eq!(out.unwrap(), b"tile data");
/// ```
#[derive(Debug, Clone)]
pub struct Segmenter {
    vci: Vci,
    /// CPCS user-to-user byte carried transparently in the trailer.
    pub uu: u8,
}

impl Segmenter {
    /// Creates a segmenter that labels cells with `vci`.
    pub fn new(vci: Vci) -> Self {
        Segmenter { vci, uu: 0 }
    }

    /// The VCI this segmenter stamps on outgoing cells.
    pub fn vci(&self) -> Vci {
        self.vci
    }

    /// Number of cells needed for a frame of `len` payload bytes.
    pub fn cells_for(len: usize) -> usize {
        (len + TRAILER_SIZE).div_ceil(PAYLOAD_SIZE)
    }

    /// Builds the padded CPCS-PDU for `frame` (payload + pad + trailer).
    pub fn build_pdu(&self, frame: &[u8]) -> Result<Vec<u8>, Aal5Error> {
        if frame.len() > MAX_FRAME {
            return Err(Aal5Error::FrameTooLarge);
        }
        let total = Self::cells_for(frame.len()) * PAYLOAD_SIZE;
        let mut pdu = Vec::with_capacity(total);
        pdu.extend_from_slice(frame);
        pdu.resize(total - TRAILER_SIZE, 0); // pad
        pdu.push(self.uu);
        pdu.push(0); // CPI
        pdu.extend_from_slice(&(frame.len() as u16).to_be_bytes());
        let crc = crc::crc32(&pdu);
        pdu.extend_from_slice(&crc.to_be_bytes());
        debug_assert_eq!(pdu.len() % PAYLOAD_SIZE, 0);
        Ok(pdu)
    }

    /// Segments `frame` into a sequence of cells; the last cell carries
    /// the end-of-frame marker. This is the copying reference path; the
    /// hot path uses [`Segmenter::segment_frame`].
    pub fn segment(&self, frame: &[u8]) -> Result<Vec<Cell>, Aal5Error> {
        let pdu = self.build_pdu(frame)?;
        let n = pdu.len() / PAYLOAD_SIZE;
        let mut cells = Vec::with_capacity(n);
        for (i, chunk) in pdu.chunks(PAYLOAD_SIZE).enumerate() {
            let mut cell = Cell::with_payload(self.vci, chunk);
            cell.set_last(i == n - 1);
            cells.push(cell);
        }
        Ok(cells)
    }

    /// Scatter-gather segmentation: appends to `out` a cell stream
    /// bit-identical to [`Segmenter::segment`]'s, but the frame's full
    /// 48-byte chunks ride as zero-copy views of `frame`'s buffer. Only
    /// the tail (final partial chunk + pad + trailer — one cell, or two
    /// when the remainder exceeds 40 bytes) is built inline, and the
    /// CRC-32 is folded over the frame in place instead of over a
    /// materialised PDU.
    ///
    /// `out` is an append-target so a steady-state producer can reuse
    /// one scratch `Vec` and never allocate per frame.
    pub fn segment_frame(&self, frame: &FrameView, out: &mut Vec<Cell>) -> Result<(), Aal5Error> {
        let len = frame.len();
        if len > MAX_FRAME {
            return Err(Aal5Error::FrameTooLarge);
        }
        let total = Self::cells_for(len) * PAYLOAD_SIZE;
        let body_cells = len / PAYLOAD_SIZE;
        let remainder = len - body_cells * PAYLOAD_SIZE;
        let tail_len = total - body_cells * PAYLOAD_SIZE; // 48 or 96

        // Synthesise the tail: remainder bytes, zero pad, trailer.
        let mut tail = [0u8; 2 * PAYLOAD_SIZE];
        tail[..remainder].copy_from_slice(&frame[len - remainder..]);
        tail[tail_len - TRAILER_SIZE] = self.uu;
        // CPI byte already zero.
        tail[tail_len - 6..tail_len - 4].copy_from_slice(&(len as u16).to_be_bytes());
        let mut state = crc::update(0xFFFF_FFFF, &frame[..len]);
        state = crc::update(state, &tail[remainder..tail_len - 4]);
        let crc = state ^ 0xFFFF_FFFF;
        tail[tail_len - 4..tail_len].copy_from_slice(&crc.to_be_bytes());

        let tail_cells = tail_len / PAYLOAD_SIZE;
        out.reserve(body_cells + tail_cells);
        for i in 0..body_cells {
            out.push(Cell::with_view(
                self.vci,
                frame.slice(i * PAYLOAD_SIZE, PAYLOAD_SIZE),
            ));
        }
        for (i, chunk) in tail[..tail_len].chunks(PAYLOAD_SIZE).enumerate() {
            let mut cell = Cell::with_payload(self.vci, chunk);
            cell.set_last(i == tail_cells - 1);
            out.push(cell);
        }
        Ok(())
    }
}

/// A reassembled frame: a zero-copy view of the sender's original arena
/// buffer when every body cell arrived intact on the view lane, or an
/// owned buffer from the copying fallback. Either way it dereferences to
/// the frame's payload bytes, and equality compares those bytes — a
/// view and an owned lease holding the same frame are equal.
#[derive(Debug, Clone)]
pub enum FrameLease {
    /// The stitched view of the producer's buffer (fast path).
    View(FrameView),
    /// Materialised bytes (inline cells, mixed buffers, or any anomaly).
    Owned(Vec<u8>),
}

impl FrameLease {
    /// Whether the frame came through without a single payload copy.
    pub fn is_view(&self) -> bool {
        matches!(self, FrameLease::View(_))
    }

    /// Extracts owned bytes (copies when the lease is a view).
    pub fn into_vec(self) -> Vec<u8> {
        match self {
            FrameLease::View(v) => v.to_vec(),
            FrameLease::Owned(b) => b,
        }
    }
}

impl Deref for FrameLease {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        match self {
            FrameLease::View(v) => v,
            FrameLease::Owned(b) => b,
        }
    }
}

impl PartialEq for FrameLease {
    fn eq(&self, other: &Self) -> bool {
        self[..] == other[..]
    }
}
impl Eq for FrameLease {}

/// Reassembles cells into frames (the receiving half of AAL5).
///
/// One reassembler holds the partial-frame state of a single virtual
/// circuit, mirroring per-VC reassembly state in an ATM NIC.
///
/// View-payload cells from one buffer arriving in order are stitched
/// without copying (`run`); inline payloads accumulate in `tail` (for a
/// scatter-gather frame that is exactly the synthesised pad/trailer
/// tail). Any deviation — a view after inline bytes, a buffer change, a
/// gap — abandons the fast lane by materialising everything into
/// `spill`, which then follows the copying path's validation to the
/// letter. `spill` being non-empty implies `run` is `None` and `tail`
/// is empty.
#[derive(Debug, Default, Clone)]
pub struct Reassembler {
    /// The contiguous zero-copy body accumulated so far.
    run: Option<FrameView>,
    /// Inline bytes following the run (pad/trailer tail), or the whole
    /// frame when no view cells are involved.
    tail: Vec<u8>,
    /// Materialised PDU after the fast lane was abandoned.
    spill: Vec<u8>,
    /// Frames delivered successfully.
    pub frames_ok: u64,
    /// Frames dropped for CRC or length errors.
    pub frames_bad: u64,
}

impl Reassembler {
    /// Creates an empty reassembler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of buffered bytes belonging to a partial frame.
    pub fn partial_len(&self) -> usize {
        self.run.as_ref().map_or(0, |r| r.len()) + self.tail.len() + self.spill.len()
    }

    /// Accepts the next cell of the circuit, copying-path result type.
    /// Equivalent to [`Reassembler::push_frame`] with the lease
    /// flattened to owned bytes.
    pub fn push(&mut self, cell: &Cell) -> Option<Result<Vec<u8>, Aal5Error>> {
        self.push_frame(cell).map(|r| r.map(FrameLease::into_vec))
    }

    /// Accepts the next cell of the circuit.
    ///
    /// Returns `None` while mid-frame; on an end-of-frame cell returns
    /// the validated frame payload — a zero-copy [`FrameLease::View`] of
    /// the producer's buffer when the whole body arrived as contiguous
    /// views, an owned buffer otherwise — or the reassembly error.
    /// Either way the internal state resets for the next frame, so a
    /// corrupted frame does not poison its successors — this is the
    /// property the paper relies on for "protection against rendering or
    /// decompressing faulty tiles".
    pub fn push_frame(&mut self, cell: &Cell) -> Option<Result<FrameLease, Aal5Error>> {
        match cell.payload_view() {
            Some(v) if self.spill.is_empty() && self.tail.is_empty() => match &mut self.run {
                None => self.run = Some(v.clone()),
                Some(run) => {
                    if !run.try_extend(v) {
                        // Buffer change or gap: abandon the fast lane.
                        let run = self.run.take().expect("checked above");
                        self.spill.extend_from_slice(&run);
                        self.spill.extend_from_slice(v);
                    }
                }
            },
            Some(v) => {
                self.materialise();
                self.spill.extend_from_slice(v);
            }
            None if self.spill.is_empty() => self.tail.extend_from_slice(cell.payload()),
            None => self.spill.extend_from_slice(cell.payload()),
        }
        if !cell.is_last() {
            return None;
        }
        Some(self.finish())
    }

    /// Moves the fast-lane state (`run` + `tail`) into `spill`.
    fn materialise(&mut self) {
        if let Some(run) = self.run.take() {
            self.spill.extend_from_slice(&run);
        }
        self.spill.append(&mut self.tail);
    }

    fn finish(&mut self) -> Result<FrameLease, Aal5Error> {
        if !self.spill.is_empty() {
            let pdu = std::mem::take(&mut self.spill);
            return self.finish_owned(pdu);
        }
        let Some(run) = self.run.take() else {
            // Pure inline frame: the copying path as it always was.
            let pdu = std::mem::take(&mut self.tail);
            return self.finish_owned(pdu);
        };
        // Fast path: contiguous views + an inline tail that must hold at
        // least the trailer. The view bytes are immutable arena storage,
        // so they are exactly what the producer segmented; the only
        // bytes to check are the tail's payload prefix and the trailer's
        // bookkeeping. Anything surprising drops to the copying path,
        // which re-validates from scratch (CRC included) in the exact
        // order the reference implementation uses.
        let t = self.tail.len();
        if t < TRAILER_SIZE {
            return self.fallback(run);
        }
        let stored_len = u16::from_be_bytes([self.tail[t - 6], self.tail[t - 5]]) as usize;
        let pdu_len = run.len() + t;
        let max_payload = pdu_len - TRAILER_SIZE;
        if stored_len > max_payload
            || pdu_len - (stored_len + TRAILER_SIZE) >= PAYLOAD_SIZE
            || stored_len < run.len()
        {
            return self.fallback(run);
        }
        let extra = stored_len - run.len();
        let buf = run.buf().clone();
        let start = run.offset();
        // The whole tail must be what the segmenter would synthesise for
        // this buffer and length: the frame's remainder bytes, a zero
        // pad, and a zero CPI octet. Only the CPCS-UU byte and the CRC
        // field are taken on trust — they are bookkeeping the immutable
        // arena already vouches for (see the module docs for the trust
        // boundary).
        if start + stored_len > buf.len()
            || self.tail[..extra] != buf[start + run.len()..start + stored_len]
            || self.tail[extra..t - TRAILER_SIZE].iter().any(|&b| b != 0)
            || self.tail[t - 7] != 0
        {
            return self.fallback(run);
        }
        self.tail.clear();
        self.frames_ok += 1;
        Ok(FrameLease::View(buf.view(start, stored_len)))
    }

    /// Copying-path validation for a frame that arrived on the fast lane
    /// but failed its cheap checks.
    fn fallback(&mut self, run: FrameView) -> Result<FrameLease, Aal5Error> {
        let mut pdu = Vec::with_capacity(run.len() + self.tail.len());
        pdu.extend_from_slice(&run);
        pdu.append(&mut self.tail);
        self.finish_owned(pdu)
    }

    fn finish_owned(&mut self, pdu: Vec<u8>) -> Result<FrameLease, Aal5Error> {
        // Trailer CRC covers the whole PDU including itself; a correct PDU
        // verifies by recomputing over everything but the stored CRC.
        if pdu.len() < TRAILER_SIZE {
            self.frames_bad += 1;
            return Err(Aal5Error::BadLength);
        }
        let (body, crc_bytes) = pdu.split_at(pdu.len() - 4);
        let stored = u32::from_be_bytes(crc_bytes.try_into().expect("4 bytes"));
        if crc::crc32(body) != stored {
            self.frames_bad += 1;
            return Err(Aal5Error::BadCrc);
        }
        let len = u16::from_be_bytes([pdu[pdu.len() - 6], pdu[pdu.len() - 5]]) as usize;
        // Valid placements of the payload: it must fit in the PDU minus
        // trailer, and padding must be less than one extra cell.
        let max_payload = pdu.len() - TRAILER_SIZE;
        if len > max_payload || pdu.len() - (len + TRAILER_SIZE) >= PAYLOAD_SIZE {
            self.frames_bad += 1;
            return Err(Aal5Error::BadLength);
        }
        self.frames_ok += 1;
        let mut out = pdu;
        out.truncate(len);
        Ok(FrameLease::Owned(out))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn roundtrip(frame: &[u8]) -> Vec<u8> {
        let cells = Segmenter::new(5).segment(frame).unwrap();
        let mut r = Reassembler::new();
        for cell in &cells[..cells.len() - 1] {
            assert!(r.push(cell).is_none());
        }
        r.push(cells.last().unwrap()).unwrap().unwrap()
    }

    #[test]
    fn empty_frame_roundtrips() {
        assert_eq!(roundtrip(b""), b"");
    }

    #[test]
    fn exact_multiple_of_payload() {
        let data = vec![7u8; PAYLOAD_SIZE * 3 - TRAILER_SIZE];
        assert_eq!(roundtrip(&data), data);
    }

    #[test]
    fn one_byte_over_adds_cell() {
        let small = vec![1u8; PAYLOAD_SIZE - TRAILER_SIZE];
        let big = vec![1u8; PAYLOAD_SIZE - TRAILER_SIZE + 1];
        assert_eq!(Segmenter::new(1).segment(&small).unwrap().len(), 1);
        assert_eq!(Segmenter::new(1).segment(&big).unwrap().len(), 2);
    }

    #[test]
    fn cells_marked_last_only_at_end() {
        let cells = Segmenter::new(9).segment(&[0u8; 300]).unwrap();
        let n = cells.len();
        for (i, c) in cells.iter().enumerate() {
            assert_eq!(c.is_last(), i == n - 1);
            assert_eq!(c.vci(), 9);
        }
    }

    #[test]
    fn corrupt_payload_detected_and_state_resets() {
        let seg = Segmenter::new(3);
        let mut cells = seg.segment(b"good frame that will be corrupted").unwrap();
        cells[0].payload_mut()[0] ^= 0xFF;
        let mut r = Reassembler::new();
        let mut result = None;
        for c in &cells {
            if let Some(res) = r.push(c) {
                result = Some(res);
            }
        }
        assert_eq!(result.unwrap().unwrap_err(), Aal5Error::BadCrc);
        assert_eq!(r.frames_bad, 1);
        // The very next frame reassembles cleanly.
        let good = seg.segment(b"next frame").unwrap();
        let mut out = None;
        for c in &good {
            if let Some(res) = r.push(c) {
                out = Some(res);
            }
        }
        assert_eq!(out.unwrap().unwrap(), b"next frame");
        assert_eq!(r.frames_ok, 1);
    }

    #[test]
    fn lost_last_cell_merges_frames_and_fails_crc() {
        let seg = Segmenter::new(3);
        let a = seg.segment(&[1u8; 100]).unwrap();
        let b = seg.segment(&[2u8; 100]).unwrap();
        let mut r = Reassembler::new();
        // Drop a's last cell: b's frames arrive appended to a's partial data.
        for c in &a[..a.len() - 1] {
            assert!(r.push(c).is_none());
        }
        let mut result = None;
        for c in &b {
            if let Some(res) = r.push(c) {
                result = Some(res);
            }
        }
        assert!(result.unwrap().is_err());
    }

    #[test]
    fn uu_byte_carried() {
        let mut seg = Segmenter::new(1);
        seg.uu = 0xAB;
        let pdu = seg.build_pdu(b"x").unwrap();
        assert_eq!(pdu[pdu.len() - 8], 0xAB);
    }

    #[test]
    fn oversized_frame_rejected() {
        let seg = Segmenter::new(1);
        assert_eq!(
            seg.segment(&vec![0u8; MAX_FRAME + 1]).unwrap_err(),
            Aal5Error::FrameTooLarge
        );
    }

    fn view_cells(frame: &[u8], vci: Vci) -> (pegasus_sim::arena::Arena, Vec<Cell>) {
        let arena = pegasus_sim::arena::Arena::new();
        let buf = arena.frame_from(frame);
        let mut cells = Vec::new();
        Segmenter::new(vci)
            .segment_frame(&buf.view_all(), &mut cells)
            .unwrap();
        (arena, cells)
    }

    #[test]
    fn scatter_gather_cells_match_copying_path_exactly() {
        for len in [0usize, 1, 39, 40, 41, 47, 48, 49, 95, 96, 97, 300, 1999] {
            let frame: Vec<u8> = (0..len).map(|i| (i * 31 % 251) as u8).collect();
            let copied = Segmenter::new(5).segment(&frame).unwrap();
            let (_arena, gathered) = view_cells(&frame, 5);
            assert_eq!(copied.len(), gathered.len(), "len={len}");
            for (a, b) in copied.iter().zip(&gathered) {
                assert_eq!(a, b, "len={len}");
                assert_eq!(a.to_bytes(), b.to_bytes(), "len={len}");
            }
            // Full body chunks ride as views; the tail is inline.
            let body = len / PAYLOAD_SIZE;
            for (i, c) in gathered.iter().enumerate() {
                assert_eq!(c.is_view(), i < body, "len={len} cell={i}");
            }
        }
    }

    #[test]
    fn zero_copy_reassembly_returns_a_view_of_the_source_buffer() {
        let frame: Vec<u8> = (0..500).map(|i| (i % 256) as u8).collect();
        let arena = pegasus_sim::arena::Arena::new();
        let buf = arena.frame_from(&frame);
        let mut cells = Vec::new();
        Segmenter::new(9)
            .segment_frame(&buf.view_all(), &mut cells)
            .unwrap();
        let mut r = Reassembler::new();
        let mut out = None;
        for c in &cells {
            if let Some(res) = r.push_frame(c) {
                out = Some(res.unwrap());
            }
        }
        let lease = out.unwrap();
        assert!(lease.is_view(), "uncorrupted views stitch without copying");
        assert_eq!(&*lease, &frame[..]);
        match &lease {
            FrameLease::View(v) => {
                assert!(pegasus_sim::arena::FrameBuf::same_buffer(v.buf(), &buf));
            }
            FrameLease::Owned(_) => unreachable!(),
        }
        assert_eq!(r.frames_ok, 1);
    }

    #[test]
    fn corrupted_view_cell_falls_back_and_fails_crc() {
        let frame = vec![0xC3u8; 400];
        let (_arena, mut cells) = view_cells(&frame, 3);
        cells[1].payload_mut()[7] ^= 0x10; // materialises: view → inline
        let mut r = Reassembler::new();
        let mut out = None;
        for c in &cells {
            if let Some(res) = r.push_frame(c) {
                out = Some(res);
            }
        }
        assert_eq!(out.unwrap().unwrap_err(), Aal5Error::BadCrc);
        assert_eq!(r.frames_bad, 1);
        // The next zero-copy frame is unaffected.
        let (_arena2, good) = view_cells(b"recovery frame", 3);
        let mut out = None;
        for c in &good {
            if let Some(res) = r.push_frame(c) {
                out = Some(res.unwrap());
            }
        }
        assert_eq!(&*out.unwrap(), b"recovery frame");
    }

    #[test]
    fn dropped_view_cell_detected() {
        let frame = vec![0x5Au8; 400];
        let (_arena, cells) = view_cells(&frame, 3);
        let mut r = Reassembler::new();
        let mut out = None;
        for (i, c) in cells.iter().enumerate() {
            if i == 2 {
                continue; // lost in the fabric
            }
            if let Some(res) = r.push_frame(c) {
                out = Some(res);
            }
        }
        assert!(out.unwrap().is_err(), "a gap in the run cannot verify");
        assert_eq!(r.frames_bad, 1);
    }

    #[test]
    fn lost_last_view_cell_merges_and_fails_like_copying_path() {
        let (_arena_a, a) = view_cells(&[1u8; 100], 3);
        let (_arena_b, b) = view_cells(&[2u8; 100], 3);
        let mut r = Reassembler::new();
        for c in &a[..a.len() - 1] {
            assert!(r.push_frame(c).is_none());
        }
        let mut out = None;
        for c in &b {
            if let Some(res) = r.push_frame(c) {
                out = Some(res);
            }
        }
        assert!(out.unwrap().is_err());
    }

    #[test]
    fn reassembler_handles_interleaved_representations() {
        // A view-segmented frame followed by a copy-segmented frame on
        // the same circuit, and vice versa.
        let seg = Segmenter::new(12);
        let (_arena, viewed) = view_cells(&[0xAAu8; 120], 12);
        let copied = seg.segment(b"copied frame payload").unwrap();
        let mut r = Reassembler::new();
        let mut frames = Vec::new();
        for c in viewed.iter().chain(&copied).chain(&viewed) {
            if let Some(res) = r.push_frame(c) {
                frames.push(res.unwrap());
            }
        }
        assert_eq!(frames.len(), 3);
        assert!(frames[0].is_view());
        assert!(!frames[1].is_view());
        assert!(frames[2].is_view());
        // Equality is over bytes, not representation.
        assert_eq!(frames[0], frames[2]);
        assert_eq!(
            frames[0],
            FrameLease::Owned(frames[0].to_vec()),
            "a view and an owned lease of the same frame compare equal"
        );
        assert_eq!(&*frames[0], &[0xAAu8; 120]);
        assert_eq!(&*frames[1], b"copied frame payload");
    }

    #[test]
    fn cells_for_counts() {
        assert_eq!(Segmenter::cells_for(0), 1);
        assert_eq!(Segmenter::cells_for(40), 1);
        assert_eq!(Segmenter::cells_for(41), 2);
        assert_eq!(Segmenter::cells_for(88), 2);
        assert_eq!(Segmenter::cells_for(89), 3);
    }

    proptest! {
        #[test]
        fn prop_roundtrip(frame in proptest::collection::vec(any::<u8>(), 0..2000)) {
            prop_assert_eq!(roundtrip(&frame), frame);
        }

        #[test]
        fn prop_scatter_gather_equivalent_to_copying_path(
            frame in proptest::collection::vec(any::<u8>(), 0..2000),
        ) {
            let copied = Segmenter::new(7).segment(&frame).unwrap();
            let (_arena, gathered) = view_cells(&frame, 7);
            prop_assert_eq!(&copied, &gathered);
            // And both reassemble — the gathered stream without a copy.
            let mut r = Reassembler::new();
            let mut out = None;
            for c in &gathered {
                if let Some(res) = r.push_frame(c) {
                    out = Some(res.unwrap());
                }
            }
            let lease = out.unwrap();
            prop_assert!(lease.is_view() || frame.len() < PAYLOAD_SIZE);
            prop_assert_eq!(&*lease, &frame[..]);
        }

        #[test]
        fn prop_view_corruption_matches_copying_path_verdict(
            frame in proptest::collection::vec(any::<u8>(), 1..500),
            cell_pick in any::<prop::sample::Index>(),
            byte in 0usize..PAYLOAD_SIZE,
            bit in 0u8..8,
        ) {
            // Corrupt the same cell on both lanes. Flipping a body cell
            // materialises it (copy-on-write), which forces the CRC
            // fallback — verdicts must then match the copying path
            // exactly. Flipping the inline tail may hit one of the
            // trusted trailer-bookkeeping bytes (CPCS-UU, CRC field)
            // the fast path carries without re-validation; the contract
            // there is weaker but still safe: an accepted frame's bytes
            // are a prefix of the true frame, never garbage.
            let mut copied = Segmenter::new(7).segment(&frame).unwrap();
            let (_arena, mut gathered) = view_cells(&frame, 7);
            let idx = cell_pick.index(copied.len());
            let body_cells = frame.len() / PAYLOAD_SIZE;
            copied[idx].payload_mut()[byte] ^= 1 << bit;
            gathered[idx].payload_mut()[byte] ^= 1 << bit;
            let drive = |cells: &[Cell]| {
                let mut r = Reassembler::new();
                let mut out = None;
                for c in cells {
                    if let Some(res) = r.push_frame(c) {
                        out = Some(res);
                    }
                }
                (out.unwrap(), r.frames_ok, r.frames_bad)
            };
            let (a, a_ok, a_bad) = drive(&copied);
            let (b, b_ok, b_bad) = drive(&gathered);
            if idx < body_cells {
                // Body corruption: exact equivalence.
                prop_assert_eq!((a_ok, a_bad), (b_ok, b_bad));
                match (a, b) {
                    (Ok(x), Ok(y)) => prop_assert_eq!(&*x, &*y),
                    (Err(x), Err(y)) => prop_assert_eq!(x, y),
                    (x, y) => prop_assert!(false, "verdicts diverged: {x:?} vs {y:?}"),
                }
            } else {
                // Tail corruption: the copying path always rejects (CRC
                // covers every byte); the fast path may accept a flip in
                // the trusted trailer bytes, but never delivers bytes
                // that differ from the true frame prefix.
                prop_assert!(a.is_err(), "copying path must reject tail flips");
                if let Ok(lease) = b {
                    prop_assert!(lease.len() <= frame.len());
                    prop_assert_eq!(&*lease, &frame[..lease.len()]);
                }
            }
        }

        #[test]
        fn prop_cell_count_formula(len in 0usize..3000) {
            let cells = Segmenter::new(1).segment(&vec![0u8; len]).unwrap();
            prop_assert_eq!(cells.len(), Segmenter::cells_for(len));
        }

        #[test]
        fn prop_any_single_payload_bitflip_detected(
            frame in proptest::collection::vec(any::<u8>(), 1..500),
            cell_pick in any::<prop::sample::Index>(),
            byte in 0usize..PAYLOAD_SIZE,
            bit in 0u8..8,
        ) {
            let mut cells = Segmenter::new(1).segment(&frame).unwrap();
            let idx = cell_pick.index(cells.len());
            cells[idx].payload_mut()[byte] ^= 1 << bit;
            let mut r = Reassembler::new();
            let mut result = None;
            for c in &cells {
                if let Some(res) = r.push(c) {
                    result = Some(res);
                }
            }
            // Either the CRC catches it, or the flip hit pure padding /
            // produced an equally-valid shorter parse — CRC-32 over the
            // whole PDU means any payload flip is caught.
            prop_assert!(result.unwrap().is_err());
        }
    }
}
