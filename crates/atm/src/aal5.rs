//! AAL5 framing: CPCS-PDU construction, segmentation and reassembly.
//!
//! The ATM camera packs tiles "into the payload of an AAL5 frame together
//! with a trailer" (§2.1). AAL5 appends a pad and an 8-byte CPCS trailer —
//! CPCS-UU (1 byte), CPI (1 byte), Length (2 bytes), CRC-32 (4 bytes) — so
//! that the padded PDU is a multiple of 48 bytes, then slices it into cell
//! payloads. The final cell of a frame is marked with the AAL-user bit in
//! the cell header's PTI field.

use crate::cell::{Cell, Vci, PAYLOAD_SIZE};
use crate::crc;

/// Size of the CPCS-PDU trailer in bytes.
pub const TRAILER_SIZE: usize = 8;

/// Largest payload a single CPCS-PDU may carry (16-bit length field).
pub const MAX_FRAME: usize = 65_535;

/// Errors surfaced by AAL5 reassembly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Aal5Error {
    /// The CRC-32 in the trailer did not match the received PDU.
    BadCrc,
    /// The length field was inconsistent with the number of cells received.
    BadLength,
    /// A frame exceeded [`MAX_FRAME`] bytes and cannot be segmented.
    FrameTooLarge,
}

impl std::fmt::Display for Aal5Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Aal5Error::BadCrc => write!(f, "AAL5 CRC-32 mismatch"),
            Aal5Error::BadLength => write!(f, "AAL5 length field inconsistent"),
            Aal5Error::FrameTooLarge => write!(f, "frame exceeds AAL5 maximum"),
        }
    }
}

impl std::error::Error for Aal5Error {}

/// Segments frames into cells (the sending half of AAL5).
///
/// # Examples
///
/// ```
/// use pegasus_atm::aal5::{Segmenter, Reassembler};
///
/// let cells = Segmenter::new(7).segment(b"tile data").unwrap();
/// let mut r = Reassembler::new();
/// let mut out = None;
/// for cell in cells {
///     if let Some(res) = r.push(&cell) {
///         out = Some(res.unwrap());
///     }
/// }
/// assert_eq!(out.unwrap(), b"tile data");
/// ```
#[derive(Debug, Clone)]
pub struct Segmenter {
    vci: Vci,
    /// CPCS user-to-user byte carried transparently in the trailer.
    pub uu: u8,
}

impl Segmenter {
    /// Creates a segmenter that labels cells with `vci`.
    pub fn new(vci: Vci) -> Self {
        Segmenter { vci, uu: 0 }
    }

    /// The VCI this segmenter stamps on outgoing cells.
    pub fn vci(&self) -> Vci {
        self.vci
    }

    /// Number of cells needed for a frame of `len` payload bytes.
    pub fn cells_for(len: usize) -> usize {
        (len + TRAILER_SIZE).div_ceil(PAYLOAD_SIZE)
    }

    /// Builds the padded CPCS-PDU for `frame` (payload + pad + trailer).
    pub fn build_pdu(&self, frame: &[u8]) -> Result<Vec<u8>, Aal5Error> {
        if frame.len() > MAX_FRAME {
            return Err(Aal5Error::FrameTooLarge);
        }
        let total = Self::cells_for(frame.len()) * PAYLOAD_SIZE;
        let mut pdu = Vec::with_capacity(total);
        pdu.extend_from_slice(frame);
        pdu.resize(total - TRAILER_SIZE, 0); // pad
        pdu.push(self.uu);
        pdu.push(0); // CPI
        pdu.extend_from_slice(&(frame.len() as u16).to_be_bytes());
        let crc = crc::crc32(&pdu);
        pdu.extend_from_slice(&crc.to_be_bytes());
        debug_assert_eq!(pdu.len() % PAYLOAD_SIZE, 0);
        Ok(pdu)
    }

    /// Segments `frame` into a sequence of cells; the last cell carries
    /// the end-of-frame marker.
    pub fn segment(&self, frame: &[u8]) -> Result<Vec<Cell>, Aal5Error> {
        let pdu = self.build_pdu(frame)?;
        let n = pdu.len() / PAYLOAD_SIZE;
        let mut cells = Vec::with_capacity(n);
        for (i, chunk) in pdu.chunks(PAYLOAD_SIZE).enumerate() {
            let mut cell = Cell::with_payload(self.vci, chunk);
            cell.set_last(i == n - 1);
            cells.push(cell);
        }
        Ok(cells)
    }
}

/// Reassembles cells into frames (the receiving half of AAL5).
///
/// One reassembler holds the partial-frame state of a single virtual
/// circuit, mirroring per-VC reassembly state in an ATM NIC.
#[derive(Debug, Default, Clone)]
pub struct Reassembler {
    buffer: Vec<u8>,
    /// Frames delivered successfully.
    pub frames_ok: u64,
    /// Frames dropped for CRC or length errors.
    pub frames_bad: u64,
}

impl Reassembler {
    /// Creates an empty reassembler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of buffered bytes belonging to a partial frame.
    pub fn partial_len(&self) -> usize {
        self.buffer.len()
    }

    /// Accepts the next cell of the circuit.
    ///
    /// Returns `None` while mid-frame; on an end-of-frame cell returns the
    /// validated frame payload or the reassembly error. Either way the
    /// internal state resets for the next frame, so a corrupted frame does
    /// not poison its successors — this is the property the paper relies
    /// on for "protection against rendering or decompressing faulty
    /// tiles".
    pub fn push(&mut self, cell: &Cell) -> Option<Result<Vec<u8>, Aal5Error>> {
        self.buffer.extend_from_slice(&cell.payload);
        if !cell.is_last() {
            return None;
        }
        let pdu = std::mem::take(&mut self.buffer);
        Some(self.finish(pdu))
    }

    fn finish(&mut self, pdu: Vec<u8>) -> Result<Vec<u8>, Aal5Error> {
        // Trailer CRC covers the whole PDU including itself; a correct PDU
        // verifies by recomputing over everything but the stored CRC.
        if pdu.len() < TRAILER_SIZE {
            self.frames_bad += 1;
            return Err(Aal5Error::BadLength);
        }
        let (body, crc_bytes) = pdu.split_at(pdu.len() - 4);
        let stored = u32::from_be_bytes(crc_bytes.try_into().expect("4 bytes"));
        if crc::crc32(body) != stored {
            self.frames_bad += 1;
            return Err(Aal5Error::BadCrc);
        }
        let len = u16::from_be_bytes([pdu[pdu.len() - 6], pdu[pdu.len() - 5]]) as usize;
        // Valid placements of the payload: it must fit in the PDU minus
        // trailer, and padding must be less than one extra cell.
        let max_payload = pdu.len() - TRAILER_SIZE;
        if len > max_payload || pdu.len() - (len + TRAILER_SIZE) >= PAYLOAD_SIZE {
            self.frames_bad += 1;
            return Err(Aal5Error::BadLength);
        }
        self.frames_ok += 1;
        let mut out = pdu;
        out.truncate(len);
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn roundtrip(frame: &[u8]) -> Vec<u8> {
        let cells = Segmenter::new(5).segment(frame).unwrap();
        let mut r = Reassembler::new();
        for cell in &cells[..cells.len() - 1] {
            assert!(r.push(cell).is_none());
        }
        r.push(cells.last().unwrap()).unwrap().unwrap()
    }

    #[test]
    fn empty_frame_roundtrips() {
        assert_eq!(roundtrip(b""), b"");
    }

    #[test]
    fn exact_multiple_of_payload() {
        let data = vec![7u8; PAYLOAD_SIZE * 3 - TRAILER_SIZE];
        assert_eq!(roundtrip(&data), data);
    }

    #[test]
    fn one_byte_over_adds_cell() {
        let small = vec![1u8; PAYLOAD_SIZE - TRAILER_SIZE];
        let big = vec![1u8; PAYLOAD_SIZE - TRAILER_SIZE + 1];
        assert_eq!(Segmenter::new(1).segment(&small).unwrap().len(), 1);
        assert_eq!(Segmenter::new(1).segment(&big).unwrap().len(), 2);
    }

    #[test]
    fn cells_marked_last_only_at_end() {
        let cells = Segmenter::new(9).segment(&[0u8; 300]).unwrap();
        let n = cells.len();
        for (i, c) in cells.iter().enumerate() {
            assert_eq!(c.is_last(), i == n - 1);
            assert_eq!(c.vci(), 9);
        }
    }

    #[test]
    fn corrupt_payload_detected_and_state_resets() {
        let seg = Segmenter::new(3);
        let mut cells = seg.segment(b"good frame that will be corrupted").unwrap();
        cells[0].payload[0] ^= 0xFF;
        let mut r = Reassembler::new();
        let mut result = None;
        for c in &cells {
            if let Some(res) = r.push(c) {
                result = Some(res);
            }
        }
        assert_eq!(result.unwrap().unwrap_err(), Aal5Error::BadCrc);
        assert_eq!(r.frames_bad, 1);
        // The very next frame reassembles cleanly.
        let good = seg.segment(b"next frame").unwrap();
        let mut out = None;
        for c in &good {
            if let Some(res) = r.push(c) {
                out = Some(res);
            }
        }
        assert_eq!(out.unwrap().unwrap(), b"next frame");
        assert_eq!(r.frames_ok, 1);
    }

    #[test]
    fn lost_last_cell_merges_frames_and_fails_crc() {
        let seg = Segmenter::new(3);
        let a = seg.segment(&[1u8; 100]).unwrap();
        let b = seg.segment(&[2u8; 100]).unwrap();
        let mut r = Reassembler::new();
        // Drop a's last cell: b's frames arrive appended to a's partial data.
        for c in &a[..a.len() - 1] {
            assert!(r.push(c).is_none());
        }
        let mut result = None;
        for c in &b {
            if let Some(res) = r.push(c) {
                result = Some(res);
            }
        }
        assert!(result.unwrap().is_err());
    }

    #[test]
    fn uu_byte_carried() {
        let mut seg = Segmenter::new(1);
        seg.uu = 0xAB;
        let pdu = seg.build_pdu(b"x").unwrap();
        assert_eq!(pdu[pdu.len() - 8], 0xAB);
    }

    #[test]
    fn oversized_frame_rejected() {
        let seg = Segmenter::new(1);
        assert_eq!(
            seg.segment(&vec![0u8; MAX_FRAME + 1]).unwrap_err(),
            Aal5Error::FrameTooLarge
        );
    }

    #[test]
    fn cells_for_counts() {
        assert_eq!(Segmenter::cells_for(0), 1);
        assert_eq!(Segmenter::cells_for(40), 1);
        assert_eq!(Segmenter::cells_for(41), 2);
        assert_eq!(Segmenter::cells_for(88), 2);
        assert_eq!(Segmenter::cells_for(89), 3);
    }

    proptest! {
        #[test]
        fn prop_roundtrip(frame in proptest::collection::vec(any::<u8>(), 0..2000)) {
            prop_assert_eq!(roundtrip(&frame), frame);
        }

        #[test]
        fn prop_cell_count_formula(len in 0usize..3000) {
            let cells = Segmenter::new(1).segment(&vec![0u8; len]).unwrap();
            prop_assert_eq!(cells.len(), Segmenter::cells_for(len));
        }

        #[test]
        fn prop_any_single_payload_bitflip_detected(
            frame in proptest::collection::vec(any::<u8>(), 1..500),
            cell_pick in any::<prop::sample::Index>(),
            byte in 0usize..PAYLOAD_SIZE,
            bit in 0u8..8,
        ) {
            let mut cells = Segmenter::new(1).segment(&frame).unwrap();
            let idx = cell_pick.index(cells.len());
            cells[idx].payload[byte] ^= 1 << bit;
            let mut r = Reassembler::new();
            let mut result = None;
            for c in &cells {
                if let Some(res) = r.push(c) {
                    result = Some(res);
                }
            }
            // Either the CRC catches it, or the flip hit pure padding /
            // produced an equally-valid shorter parse — CRC-32 over the
            // whole PDU means any payload flip is caught.
            prop_assert!(result.unwrap().is_err());
        }
    }
}
