//! CRC-32 as used by the AAL5 CPCS trailer.
//!
//! AAL5 protects every frame with the same CRC-32 as IEEE 802.3:
//! polynomial 0x04C11DB7 (reflected 0xEDB88320), initial value all-ones,
//! final complement. The paper relies on this ("Using AAL5 ... offers
//! protection against rendering or decompressing faulty tiles"), so the
//! reproduction computes it for real.

/// Reflected CRC-32 polynomial (IEEE 802.3 / AAL5).
const POLY: u32 = 0xEDB8_8320;

/// Builds the 256-entry lookup table at compile time.
const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ POLY } else { crc >> 1 };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = build_table();

/// Computes the CRC-32 of `data`.
///
/// # Examples
///
/// ```
/// // The classic check value.
/// assert_eq!(pegasus_atm::crc::crc32(b"123456789"), 0xCBF4_3926);
/// ```
pub fn crc32(data: &[u8]) -> u32 {
    update(0xFFFF_FFFF, data) ^ 0xFFFF_FFFF
}

/// Incrementally folds `data` into a running (non-finalized) CRC state.
///
/// Start from `0xFFFF_FFFF`, call [`update`] for each chunk, and XOR with
/// `0xFFFF_FFFF` to finalize — exactly what [`crc32`] does in one step.
pub fn update(state: u32, data: &[u8]) -> u32 {
    let mut crc = state;
    for &b in data {
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn check_value() {
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn empty_input() {
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn incremental_matches_oneshot() {
        let data: Vec<u8> = (0..=255u8).cycle().take(1000).collect();
        let oneshot = crc32(&data);
        let mut state = 0xFFFF_FFFF;
        for chunk in data.chunks(7) {
            state = update(state, chunk);
        }
        assert_eq!(state ^ 0xFFFF_FFFF, oneshot);
    }

    #[test]
    fn single_bit_flip_changes_crc() {
        let mut data = vec![0u8; 64];
        let base = crc32(&data);
        for i in 0..64 {
            for bit in 0..8 {
                data[i] ^= 1 << bit;
                assert_ne!(crc32(&data), base, "flip at byte {i} bit {bit} undetected");
                data[i] ^= 1 << bit;
            }
        }
    }

    #[test]
    fn burst_errors_detected() {
        let data = vec![0xA5u8; 128];
        let base = crc32(&data);
        let mut corrupted = data.clone();
        for b in corrupted.iter_mut().take(4) {
            *b = !*b;
        }
        assert_ne!(crc32(&corrupted), base);
    }
}
