//! CRC-32 as used by the AAL5 CPCS trailer.
//!
//! AAL5 protects every frame with the same CRC-32 as IEEE 802.3:
//! polynomial 0x04C11DB7 (reflected 0xEDB88320), initial value all-ones,
//! final complement. The paper relies on this ("Using AAL5 ... offers
//! protection against rendering or decompressing faulty tiles"), so the
//! reproduction computes it for real.
//!
//! The kernel is *slice-by-8*: eight compile-time tables let [`update`]
//! fold eight bytes per step — eight independent loads instead of an
//! eight-iteration dependency chain — which matters because every AAL5
//! frame of every video tile crosses this function twice (segmenter and
//! reassembler).

/// Reflected CRC-32 polynomial (IEEE 802.3 / AAL5).
const POLY: u32 = 0xEDB8_8320;

/// Builds the slice-by-8 table set at compile time. `TABLES[0]` is the
/// classic byte-at-a-time table; `TABLES[k][i]` advances the CRC of byte
/// `i` through `k` additional zero bytes, which is what lets eight
/// lookups each cover a different lane of a 64-bit load.
const fn build_tables() -> [[u32; 256]; 8] {
    let mut tables = [[0u32; 256]; 8];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        tables[0][i] = crc;
        i += 1;
    }
    let mut k = 1;
    while k < 8 {
        let mut i = 0;
        while i < 256 {
            let prev = tables[k - 1][i];
            tables[k][i] = (prev >> 8) ^ tables[0][(prev & 0xFF) as usize];
            i += 1;
        }
        k += 1;
    }
    tables
}

static TABLES: [[u32; 256]; 8] = build_tables();

/// Computes the CRC-32 of `data`.
///
/// # Examples
///
/// ```
/// // The classic check value.
/// assert_eq!(pegasus_atm::crc::crc32(b"123456789"), 0xCBF4_3926);
/// ```
pub fn crc32(data: &[u8]) -> u32 {
    update(0xFFFF_FFFF, data) ^ 0xFFFF_FFFF
}

/// Incrementally folds `data` into a running (non-finalized) CRC state.
///
/// Start from `0xFFFF_FFFF`, call [`update`] for each chunk, and XOR with
/// `0xFFFF_FFFF` to finalize — exactly what [`crc32`] does in one step.
/// Chunk boundaries never change the result: the slice-by-8 fast path and
/// the byte-at-a-time tail compute the same polynomial division.
pub fn update(state: u32, data: &[u8]) -> u32 {
    let mut crc = state;
    let mut chunks = data.chunks_exact(8);
    for c in &mut chunks {
        let lo = u32::from_le_bytes([c[0], c[1], c[2], c[3]]) ^ crc;
        let hi = u32::from_le_bytes([c[4], c[5], c[6], c[7]]);
        crc = TABLES[7][(lo & 0xFF) as usize]
            ^ TABLES[6][((lo >> 8) & 0xFF) as usize]
            ^ TABLES[5][((lo >> 16) & 0xFF) as usize]
            ^ TABLES[4][(lo >> 24) as usize]
            ^ TABLES[3][(hi & 0xFF) as usize]
            ^ TABLES[2][((hi >> 8) & 0xFF) as usize]
            ^ TABLES[1][((hi >> 16) & 0xFF) as usize]
            ^ TABLES[0][(hi >> 24) as usize];
    }
    for &b in chunks.remainder() {
        crc = (crc >> 8) ^ TABLES[0][((crc ^ b as u32) & 0xFF) as usize];
    }
    crc
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Byte-at-a-time oracle using only the base table.
    fn update_bytewise(state: u32, data: &[u8]) -> u32 {
        let mut crc = state;
        for &b in data {
            crc = (crc >> 8) ^ TABLES[0][((crc ^ b as u32) & 0xFF) as usize];
        }
        crc
    }

    #[test]
    fn check_value() {
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn empty_input() {
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn incremental_matches_oneshot() {
        let data: Vec<u8> = (0..=255u8).cycle().take(1000).collect();
        let oneshot = crc32(&data);
        let mut state = 0xFFFF_FFFF;
        for chunk in data.chunks(7) {
            state = update(state, chunk);
        }
        assert_eq!(state ^ 0xFFFF_FFFF, oneshot);
    }

    #[test]
    fn slice_by_8_matches_bytewise_at_every_length_and_alignment() {
        let data: Vec<u8> = (0..512u32)
            .map(|i| (i.wrapping_mul(197).wrapping_add(i >> 3)) as u8)
            .collect();
        for start in 0..9 {
            for len in 0..64 {
                let slice = &data[start..start + len];
                assert_eq!(
                    update(0xFFFF_FFFF, slice),
                    update_bytewise(0xFFFF_FFFF, slice),
                    "start={start} len={len}"
                );
            }
        }
        assert_eq!(
            update(0x1234_5678, &data),
            update_bytewise(0x1234_5678, &data)
        );
    }

    #[test]
    fn incremental_split_inside_an_eight_byte_block() {
        let data: Vec<u8> = (0..=255u8).collect();
        let oneshot = crc32(&data);
        for split in [1, 3, 7, 8, 9, 15, 100, 255] {
            let mut state = 0xFFFF_FFFF;
            state = update(state, &data[..split]);
            state = update(state, &data[split..]);
            assert_eq!(state ^ 0xFFFF_FFFF, oneshot, "split={split}");
        }
    }

    #[test]
    fn single_bit_flip_changes_crc() {
        let mut data = vec![0u8; 64];
        let base = crc32(&data);
        for i in 0..64 {
            for bit in 0..8 {
                data[i] ^= 1 << bit;
                assert_ne!(crc32(&data), base, "flip at byte {i} bit {bit} undetected");
                data[i] ^= 1 << bit;
            }
        }
    }

    #[test]
    fn burst_errors_detected() {
        let data = vec![0xA5u8; 128];
        let base = crc32(&data);
        let mut corrupted = data.clone();
        for b in corrupted.iter_mut().take(4) {
            *b = !*b;
        }
        assert_ne!(crc32(&corrupted), base);
    }
}
