//! The acceptance gate for the zero-copy frame path: once warm, the
//! forwarding hot path — scatter-gather segmentation, link cell trains,
//! a switch hop, per-cell delivery — performs **zero heap allocations
//! per cell**. Allocation volume is measured with a counting global
//! allocator and shown to be independent of how many cells cross the
//! fabric: doubling the cells per frame does not change the per-frame
//! allocation count (one `Rc` control block per frozen frame buffer is
//! the only steady-state allocation, and it amortises over the frame's
//! whole cell train).

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::RefCell;
use std::rc::Rc;
use std::sync::atomic::{AtomicU64, Ordering};

use pegasus_atm::aal5::Segmenter;
use pegasus_atm::cell::Cell;
use pegasus_atm::link::{CellSink, Link};
use pegasus_atm::switch::{input_port, Switch};
use pegasus_sim::arena::Arena;
use pegasus_sim::Simulator;

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

fn allocs() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

/// A consumer that counts and releases cells immediately (returning
/// their view leases to the arena).
#[derive(Default)]
struct DrainSink {
    cells: u64,
}

impl CellSink for DrainSink {
    fn deliver(&mut self, _sim: &mut Simulator, _cell: Cell) {
        self.cells += 1;
    }
}

/// Drives `frames` frames of `frame_bytes` payload through
/// camera-edge link → switch → egress link → sink, all on one arena,
/// and returns the cells delivered.
struct Pipeline {
    arena: Arena,
    seg: Segmenter,
    cells: Vec<Cell>,
    link: Link,
    sink: Rc<RefCell<DrainSink>>,
    sim: Simulator,
    template: Vec<u8>,
}

impl Pipeline {
    fn new(frame_bytes: usize) -> Pipeline {
        let sw = Switch::shared("sw", 2, 100);
        sw.borrow_mut().add_route(0, 7, 1, 7);
        let sink = Rc::new(RefCell::new(DrainSink::default()));
        sw.borrow_mut()
            .attach_output(1, Link::new(622_000_000, 100, sink.clone()));
        let link = Link::new(622_000_000, 100, input_port(&sw, 0));
        Pipeline {
            arena: Arena::new(),
            seg: Segmenter::new(7),
            cells: Vec::new(),
            link,
            sink,
            sim: Simulator::new(),
            template: (0..frame_bytes).map(|i| i as u8).collect(),
        }
    }

    fn run_frames(&mut self, frames: usize) {
        for _ in 0..frames {
            let frame = self.arena.frame_from(&self.template);
            self.seg
                .segment_frame(&frame.view_all(), &mut self.cells)
                .expect("in range");
            drop(frame);
            for cell in self.cells.drain(..) {
                self.link.send(&mut self.sim, cell);
            }
            self.sim.run();
        }
    }

    fn delivered(&self) -> u64 {
        self.sink.borrow().cells
    }
}

/// Both halves run inside one test: the allocation counter is
/// process-global, so concurrent tests would pollute each other's
/// deltas.
#[test]
fn zero_copy_forwarding_hot_path() {
    steady_state_forwarding_allocates_per_frame_not_per_cell();
    view_cells_cross_the_switch_without_payload_copies();
    credit_return_paths_allocate_nothing_in_steady_state();
}

/// The sharded control plane's alloc gate: the delayed-return ledger
/// (a swap-remove `Vec` that keeps its capacity) and the cross-shard
/// export path (records drained executor-style into a reusable buffer,
/// both ends keeping their capacities) allocate **nothing** once warm.
fn credit_return_paths_allocate_nothing_in_steady_state() {
    use pegasus_atm::credit::{CreditExportBuf, CreditReturn, CreditSink, CreditWindow};

    // Delayed in-process returns: acquire a burst, park its returns,
    // advance past their due times. One cycle at steady state.
    let w = CreditWindow::shared(64);
    let mut now: u64 = 0;
    let mut delayed_cycle = |measure: bool| -> u64 {
        let before = allocs();
        assert!(w.borrow_mut().try_acquire_at(now, 32));
        for i in 0..32u64 {
            w.borrow_mut().release_at(now + 5 + i, 1);
        }
        now += 100;
        if measure {
            allocs() - before
        } else {
            0
        }
    };
    for _ in 0..8 {
        delayed_cycle(false); // warm-up: grow the pending ledger
    }
    let delayed = (0..3).map(|_| delayed_cycle(true)).min().expect("windows");
    assert_eq!(
        delayed, 0,
        "delayed credit returns must not allocate at steady state"
    );

    // Cross-shard export: a consumer-side gate seals records into the
    // export buffer; the executor drains them with `clear` + `append`,
    // which retains both capacities.
    let buf: CreditExportBuf = Rc::new(RefCell::new(Vec::new()));
    let cs = CreditSink::wrap(Rc::new(RefCell::new(DrainSink::default())));
    cs.borrow_mut().register_export(7, 5, buf.clone());
    let mut sim = Simulator::new();
    let mut drain_buf: Vec<CreditReturn> = Vec::new();
    let mut export_cycle = |sim: &mut Simulator, measure: bool| -> u64 {
        let before = allocs();
        for _ in 0..32 {
            cs.borrow_mut().deliver(sim, Cell::new(7));
        }
        {
            let mut records = buf.borrow_mut();
            drain_buf.clear();
            drain_buf.append(&mut records);
        }
        assert_eq!(drain_buf.len(), 32);
        if measure {
            allocs() - before
        } else {
            0
        }
    };
    for _ in 0..8 {
        export_cycle(&mut sim, false);
    }
    let export = (0..3)
        .map(|_| export_cycle(&mut sim, true))
        .min()
        .expect("windows");
    assert_eq!(
        export, 0,
        "sealed credit exports must not allocate at steady state"
    );
}

fn steady_state_forwarding_allocates_per_frame_not_per_cell() {
    // 20 cells per frame vs 40 cells per frame.
    let mut small = Pipeline::new(20 * 48 - 20);
    let mut large = Pipeline::new(40 * 48 - 20);

    // Warm-up: grow every recycled structure (arena pool, cell scratch,
    // train deques, event slab, heap) to steady-state capacity.
    small.run_frames(20);
    large.run_frames(20);

    // Minimum of three windows: the test harness's own service threads
    // can allocate at arbitrary wall times, and the minimum filters
    // that out (the pipeline itself is deterministic).
    const FRAMES: usize = 50;
    let measure = |p: &mut Pipeline| {
        (0..3)
            .map(|_| {
                let before = allocs();
                p.run_frames(FRAMES);
                allocs() - before
            })
            .min()
            .expect("three windows")
    };
    let small_allocs = measure(&mut small);
    let large_allocs = measure(&mut large);

    assert_eq!(small.delivered(), 170 * 20);
    assert_eq!(large.delivered(), 170 * 40);

    // The frame path's only steady-state allocation is the per-frame
    // `Rc` control block of the frozen buffer: the allocation count
    // must not scale with cell count.
    assert_eq!(
        small_allocs, large_allocs,
        "allocations must be independent of cells per frame \
         ({small_allocs} vs {large_allocs} for 2x the cells)"
    );
    assert!(
        small_allocs <= FRAMES as u64,
        "at most one allocation per frame, got {small_allocs} for {FRAMES} frames"
    );
}

fn view_cells_cross_the_switch_without_payload_copies() {
    // Independent of the allocator accounting: a cell forwarded by the
    // switch still references the producer's buffer.
    let sw = Switch::shared("sw", 2, 0);
    sw.borrow_mut().add_route(0, 9, 1, 21);
    #[derive(Default)]
    struct KeepSink(Vec<Cell>);
    impl CellSink for KeepSink {
        fn deliver(&mut self, _sim: &mut Simulator, cell: Cell) {
            self.0.push(cell);
        }
    }
    let sink = Rc::new(RefCell::new(KeepSink::default()));
    sw.borrow_mut()
        .attach_output(1, Link::new(100_000_000, 0, sink.clone()));
    let input = input_port(&sw, 0);

    let arena = Arena::new();
    let frame = arena.frame_from(&[0xEEu8; 480]);
    let mut cells = Vec::new();
    Segmenter::new(9)
        .segment_frame(&frame.view_all(), &mut cells)
        .unwrap();
    let mut sim = Simulator::new();
    for cell in cells.drain(..) {
        input.borrow_mut().deliver(&mut sim, cell);
    }
    sim.run();
    let kept = sink.borrow();
    assert_eq!(kept.0.len(), 11);
    for (i, cell) in kept.0.iter().enumerate() {
        assert_eq!(cell.vci(), 21, "VCI rewritten in flight");
        if i < 10 {
            let view = cell.payload_view().expect("body cells stay views");
            assert!(
                pegasus_sim::arena::FrameBuf::same_buffer(view.buf(), &frame),
                "forwarded payload is the producer's buffer"
            );
        }
    }
}
