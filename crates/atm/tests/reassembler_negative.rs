//! Negative-path tests for AAL5 reassembly: frames that arrive damaged
//! must come back as classified errors — never a panic, never corrupt
//! bytes delivered as if whole — and the reassembler's per-frame state
//! must reset so the next clean frame is untouched.

use pegasus_atm::aal5::{Aal5Error, Reassembler, Segmenter, TRAILER_SIZE};
use pegasus_atm::cell::{Cell, PAYLOAD_SIZE};
use pegasus_atm::crc::crc32;

const VCI: u16 = 9;

/// Feeds a raw CPCS-PDU to a fresh reassembler, one 48-byte cell at a
/// time, and returns the end-of-frame verdict.
fn drive(pdu: &[u8]) -> Result<Vec<u8>, Aal5Error> {
    assert_eq!(pdu.len() % PAYLOAD_SIZE, 0, "PDU must be cell-aligned");
    let n = pdu.len() / PAYLOAD_SIZE;
    let mut r = Reassembler::new();
    let mut verdict = None;
    for (i, chunk) in pdu.chunks(PAYLOAD_SIZE).enumerate() {
        let mut cell = Cell::with_payload(VCI, chunk);
        cell.set_last(i == n - 1);
        if let Some(v) = r.push(&cell) {
            verdict = Some(v);
        }
    }
    verdict.expect("the marked last cell closes the frame")
}

/// A well-formed PDU for `frame` whose length field is overwritten with
/// `claimed` and whose CRC-32 is then *recomputed*, so the CRC check
/// passes and only the length plausibility check can catch it.
fn pdu_claiming(frame: &[u8], claimed: u16) -> Vec<u8> {
    let mut pdu = Segmenter::new(VCI).build_pdu(frame).expect("small frame");
    let t = pdu.len();
    pdu[t - 6..t - 4].copy_from_slice(&claimed.to_be_bytes());
    let crc = crc32(&pdu[..t - 4]);
    pdu[t - 4..].copy_from_slice(&crc.to_be_bytes());
    pdu
}

#[test]
fn lone_final_cell_is_rejected_and_state_resets() {
    // The head of the frame is lost in the fabric; only the cell
    // carrying the trailer arrives. The trailer's length field promises
    // 100 bytes the reassembler never saw.
    let frame = [0x5Au8; 100];
    let cells = Segmenter::new(VCI).segment(&frame).expect("3 cells");
    assert_eq!(cells.len(), 3);
    let mut r = Reassembler::new();
    let verdict = r.push(&cells[2]).expect("marked last");
    // The stored CRC covers bytes that never arrived.
    assert_eq!(verdict.unwrap_err(), Aal5Error::BadCrc);
    assert_eq!(r.frames_bad, 1);

    // The failure consumed the partial state: a clean frame sails through.
    let clean = Segmenter::new(VCI).segment(b"after the wreck").unwrap();
    let mut out = None;
    for c in &clean {
        if let Some(v) = r.push(c) {
            out = Some(v);
        }
    }
    assert_eq!(out.unwrap().unwrap(), b"after the wreck");
    assert_eq!(r.frames_ok, 1);
}

#[test]
fn truncated_final_cell_merges_into_next_frame_and_is_rejected() {
    // The final cell never arrives: the partial body waits, merges with
    // the next frame's cells, and the combined mess is rejected at that
    // frame's boundary — one loss costs at most one extra frame.
    let frame = [0xC3u8; 200];
    let cells = Segmenter::new(VCI).segment(&frame).unwrap();
    let mut r = Reassembler::new();
    for c in &cells[..cells.len() - 1] {
        assert!(r.push(c).is_none());
    }
    assert!(r.partial_len() > 0, "partial state is pending");

    let next = Segmenter::new(VCI).segment(b"innocent bystander").unwrap();
    let mut verdict = None;
    for c in &next {
        if let Some(v) = r.push(c) {
            verdict = Some(v);
        }
    }
    assert!(verdict.expect("boundary reached").is_err());
    assert_eq!(r.partial_len(), 0, "the rejection drained all state");

    // And the frame after that is clean again.
    let again = Segmenter::new(VCI).segment(b"recovered").unwrap();
    let mut out = None;
    for c in &again {
        if let Some(v) = r.push(c) {
            out = Some(v);
        }
    }
    assert_eq!(out.unwrap().unwrap(), b"recovered");
}

#[test]
fn trailer_length_beyond_accumulated_bytes_is_bad_length() {
    // CRC deliberately made valid over the inflated length field: the
    // length plausibility check is the only line of defence, and 200
    // claimed bytes cannot fit a 144-byte PDU.
    let frame = [7u8; 100];
    let pdu = pdu_claiming(&frame, 200);
    assert_eq!(drive(&pdu), Err(Aal5Error::BadLength));
}

#[test]
fn crc_valid_but_length_too_small_is_bad_length() {
    // Claiming 10 bytes in a 3-cell PDU leaves more than a whole cell
    // of "padding" — a frame that would have segmented into fewer
    // cells. CRC passes; the placement check must still refuse.
    let frame = [7u8; 100];
    let pdu = pdu_claiming(&frame, 10);
    assert_eq!(drive(&pdu), Err(Aal5Error::BadLength));
}

#[test]
fn length_field_edges_hold() {
    // Table of claimed lengths for a 100-byte frame (PDU = 144 bytes,
    // max payload 136, real padding boundary at 89): every claim in the
    // legal placement window decodes (CRC was recomputed, so these are
    // indistinguishable from honest frames of that length); everything
    // outside is BadLength.
    let frame = [0x11u8; 100];
    let max_payload = (3 * PAYLOAD_SIZE - TRAILER_SIZE) as u16;
    let cases: &[(u16, bool)] = &[
        (89, true),          // smallest length that still needs 3 cells
        (88, false),         // would have fit in 2 cells: over-padded
        (100, true),         // the honest length
        (max_payload, true), // zero padding
        (max_payload + 1, false),
        (u16::MAX, false),
    ];
    for &(claim, ok) in cases {
        let pdu = pdu_claiming(&frame, claim);
        let got = drive(&pdu);
        if ok {
            let out = got.unwrap_or_else(|e| panic!("claim {claim} should decode, got {e}"));
            assert_eq!(out.len(), claim as usize);
        } else {
            assert_eq!(got, Err(Aal5Error::BadLength), "claim {claim}");
        }
    }
}

#[test]
fn flipped_body_byte_is_bad_crc_not_delivery() {
    let frame: Vec<u8> = (0..300).map(|i| i as u8).collect();
    let mut pdu = Segmenter::new(VCI).build_pdu(&frame).unwrap();
    pdu[150] ^= 0x40;
    assert_eq!(drive(&pdu), Err(Aal5Error::BadCrc));
}
