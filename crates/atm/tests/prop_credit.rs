//! Property tests for credit-based VC flow control.
//!
//! Two invariants, each driven by a generator rather than a scripted
//! scenario:
//!
//! 1. **Conservation.** Whatever interleaving of acquires, releases and
//!    reclaims a window sees, every credit ever spent is either still
//!    in flight, returned by the consumer, or reclaimed after a drop —
//!    and the in-flight count never exceeds the window.
//! 2. **Bounded queues by construction.** A producer that spends a
//!    credit per cell before transmitting cannot build a switch backlog
//!    deeper than its window, no matter how fast it offers frames or
//!    how slow the egress drains. This is the whole point of the
//!    mechanism, so it is tested through the real pipe: ingress link →
//!    switch queue → slow egress link → crediting consumer.

use std::cell::RefCell;
use std::rc::Rc;

use proptest::prelude::*;

use pegasus_atm::cell::Cell;
use pegasus_atm::credit::{CreditSink, CreditWindow};
use pegasus_atm::link::{CellSink, Link};
use pegasus_atm::switch::{input_port, Switch};
use pegasus_sim::Simulator;

/// A consumer that only counts; the crediting wrapper does the rest.
#[derive(Default)]
struct DrainSink {
    cells: u64,
}

impl CellSink for DrainSink {
    fn deliver(&mut self, _sim: &mut Simulator, _cell: Cell) {
        self.cells += 1;
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Invariant 1: conservation holds after every operation of any
    /// acquire/release/reclaim interleaving, and in-flight never
    /// exceeds the window.
    #[test]
    fn credits_conserve_under_any_interleaving(
        window in 1u64..64,
        ops in prop::collection::vec((0u8..3, 1u64..32), 1..200),
    ) {
        let w = CreditWindow::shared(window);
        for (kind, n) in ops {
            let mut w = w.borrow_mut();
            match kind {
                0 => {
                    let before = w.in_flight();
                    let ok = w.try_acquire(n);
                    // All-or-nothing: success adds exactly n, failure nothing.
                    let expect = if ok { before + n } else { before };
                    prop_assert_eq!(w.in_flight(), expect);
                }
                1 => {
                    let n = n.min(w.in_flight());
                    w.release(n);
                }
                _ => {
                    let n = n.min(w.in_flight());
                    w.reclaim(n);
                }
            }
            prop_assert!(w.conserved(), "consumed != in_flight + returned + reclaimed");
            prop_assert!(w.in_flight() <= window, "window overrun");
            prop_assert!(w.peak_in_flight() <= window);
        }
    }

    /// Invariant 2: through a real ingress-link → switch → egress-link
    /// pipe with a crediting consumer, the switch backlog never exceeds
    /// the credit window — even with a fast ingress offering frames far
    /// quicker than the slow egress drains, which without credits would
    /// overflow the queue. Afterwards the books balance exactly.
    #[test]
    fn credited_pipe_bounds_the_switch_queue(
        window in 1u64..48,
        frame_cells in 1u64..16,
        frames in 1u64..40,
    ) {
        let sw = Switch::shared("sw", 2, 100);
        sw.borrow_mut().add_route(0, 7, 1, 7);
        let drain = Rc::new(RefCell::new(DrainSink::default()));
        let csink = CreditSink::wrap(drain.clone());
        let w = CreditWindow::shared(window);
        csink.borrow_mut().register(7, w.clone());
        // Egress 60x slower than ingress: pressure is guaranteed.
        sw.borrow_mut()
            .attach_output(1, Link::new(10_000_000, 100, csink));
        let ingress = Rc::new(RefCell::new(Link::new(
            622_000_000,
            100,
            input_port(&sw, 0),
        )));

        let mut sim = Simulator::new();
        if frame_cells > window {
            // A frame wider than the window can never acquire: one
            // attempt stalls and the producer would retry forever, so
            // the pump is not even started.
            prop_assert!(!w.borrow_mut().try_acquire(frame_cells));
        } else {
            // Offer a frame every microsecond until `frames` have been
            // accepted; an empty window holds the whole frame at the
            // source, and returning credits guarantee termination.
            let mut sent = 0u64;
            let pump_w = w.clone();
            let tx = ingress.clone();
            sim.schedule_chain(move |sim| {
                if sent >= frames {
                    return None;
                }
                if pump_w.borrow_mut().try_acquire(frame_cells) {
                    sent += 1;
                    let mut l = tx.borrow_mut();
                    for _ in 0..frame_cells {
                        l.send(sim, Cell::new(7));
                    }
                }
                Some(sim.now() + 1_000)
            });
        }
        sim.run();

        let peak = sw.borrow().stats.peak_queue_cells;
        prop_assert!(
            peak <= window,
            "switch backlog {} exceeded credit window {}", peak, window
        );

        let w = w.borrow();
        prop_assert!(w.conserved());
        if frame_cells <= window {
            // Every offered frame eventually got through and drained.
            prop_assert_eq!(drain.borrow().cells, frames * frame_cells);
            prop_assert_eq!(w.in_flight(), 0, "all credits returned after drain");
        } else {
            // A frame wider than the window can never acquire: the
            // producer stalls forever and nothing enters the fabric.
            prop_assert_eq!(drain.borrow().cells, 0);
            prop_assert!(w.stalls() > 0);
        }
    }
}
