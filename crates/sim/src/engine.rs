//! The discrete-event engine.
//!
//! A [`Simulator`] owns a priority queue of timestamped events. Each event
//! is a boxed `FnOnce(&mut Simulator)`; shared world state lives in
//! `Rc<RefCell<_>>` cells captured by the closures. Events at equal times
//! fire in scheduling order (FIFO), which makes runs fully deterministic.

use std::cell::Cell;
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::rc::Rc;

use crate::time::Ns;

/// Identifier of a scheduled event, usable for cancellation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventId(u64);

struct ScheduledEvent {
    time: Ns,
    seq: u64,
    cancelled: Rc<Cell<bool>>,
    action: Box<dyn FnOnce(&mut Simulator)>,
}

impl PartialEq for ScheduledEvent {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for ScheduledEvent {}
impl PartialOrd for ScheduledEvent {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for ScheduledEvent {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops first.
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

/// A deterministic discrete-event simulator over virtual nanoseconds.
///
/// # Examples
///
/// ```
/// use pegasus_sim::Simulator;
/// use std::{cell::RefCell, rc::Rc};
///
/// let mut sim = Simulator::new();
/// let hits = Rc::new(RefCell::new(Vec::new()));
/// for t in [30u64, 10, 20] {
///     let hits = hits.clone();
///     sim.schedule_at(t, move |sim| hits.borrow_mut().push(sim.now()));
/// }
/// sim.run();
/// assert_eq!(*hits.borrow(), vec![10, 20, 30]);
/// ```
pub struct Simulator {
    now: Ns,
    next_seq: u64,
    queue: BinaryHeap<ScheduledEvent>,
    cancels: Vec<(EventId, Rc<Cell<bool>>)>,
    executed: u64,
}

impl Default for Simulator {
    fn default() -> Self {
        Self::new()
    }
}

impl Simulator {
    /// Creates an empty simulator at virtual time zero.
    pub fn new() -> Self {
        Simulator {
            now: 0,
            next_seq: 0,
            queue: BinaryHeap::new(),
            cancels: Vec::new(),
            executed: 0,
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> Ns {
        self.now
    }

    /// Number of events executed so far.
    pub fn events_executed(&self) -> u64 {
        self.executed
    }

    /// Number of events still pending (including cancelled husks).
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Schedules `action` to run at absolute virtual time `time`.
    ///
    /// Scheduling in the past is a logic error and panics; events for the
    /// current instant are allowed and run after all earlier-scheduled
    /// events of the same instant.
    ///
    /// # Panics
    ///
    /// Panics if `time` is earlier than [`Self::now`].
    pub fn schedule_at<F>(&mut self, time: Ns, action: F) -> EventId
    where
        F: FnOnce(&mut Simulator) + 'static,
    {
        assert!(
            time >= self.now,
            "cannot schedule into the past: now={} target={}",
            self.now,
            time
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        let cancelled = Rc::new(Cell::new(false));
        let id = EventId(seq);
        self.cancels.push((id, cancelled.clone()));
        // Keep the cancel map from growing without bound.
        if self.cancels.len() > 4096 {
            self.cancels.retain(|(_, c)| !c.get());
        }
        self.queue.push(ScheduledEvent {
            time,
            seq,
            cancelled,
            action: Box::new(action),
        });
        id
    }

    /// Schedules `action` to run `delay` nanoseconds from now.
    pub fn schedule_in<F>(&mut self, delay: Ns, action: F) -> EventId
    where
        F: FnOnce(&mut Simulator) + 'static,
    {
        self.schedule_at(self.now.saturating_add(delay), action)
    }

    /// Cancels a pending event. Returns `true` if the event had not yet
    /// fired or been cancelled.
    pub fn cancel(&mut self, id: EventId) -> bool {
        if let Some((_, flag)) = self.cancels.iter().find(|(eid, _)| *eid == id) {
            let was = flag.get();
            flag.set(true);
            !was
        } else {
            false
        }
    }

    /// Runs a single event; returns `false` when the queue is empty.
    pub fn step(&mut self) -> bool {
        while let Some(ev) = self.queue.pop() {
            if ev.cancelled.get() {
                continue;
            }
            ev.cancelled.set(true); // mark consumed so cancel() returns false afterwards
            debug_assert!(ev.time >= self.now);
            self.now = ev.time;
            self.executed += 1;
            (ev.action)(self);
            return true;
        }
        false
    }

    /// Runs events until the queue drains.
    pub fn run(&mut self) {
        while self.step() {}
    }

    /// Runs events with timestamps `<= deadline`, then sets the clock to
    /// `deadline` (if it is later than the last event).
    pub fn run_until(&mut self, deadline: Ns) {
        loop {
            match self.queue.peek() {
                Some(ev) if ev.time <= deadline => {
                    self.step();
                }
                _ => break,
            }
        }
        if self.now < deadline {
            self.now = deadline;
        }
    }

    /// Runs at most `n` events.
    pub fn run_steps(&mut self, n: u64) {
        for _ in 0..n {
            if !self.step() {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;

    #[test]
    fn events_fire_in_time_order() {
        let mut sim = Simulator::new();
        let order = Rc::new(RefCell::new(Vec::new()));
        for (t, tag) in [(50u64, 'c'), (10, 'a'), (30, 'b')] {
            let order = order.clone();
            sim.schedule_at(t, move |_| order.borrow_mut().push(tag));
        }
        sim.run();
        assert_eq!(*order.borrow(), vec!['a', 'b', 'c']);
        assert_eq!(sim.now(), 50);
        assert_eq!(sim.events_executed(), 3);
    }

    #[test]
    fn equal_time_events_fire_fifo() {
        let mut sim = Simulator::new();
        let order = Rc::new(RefCell::new(Vec::new()));
        for tag in 0..16 {
            let order = order.clone();
            sim.schedule_at(100, move |_| order.borrow_mut().push(tag));
        }
        sim.run();
        assert_eq!(*order.borrow(), (0..16).collect::<Vec<_>>());
    }

    #[test]
    fn events_can_schedule_more_events() {
        let mut sim = Simulator::new();
        let count = Rc::new(Cell::new(0u32));
        fn tick(sim: &mut Simulator, count: Rc<Cell<u32>>) {
            count.set(count.get() + 1);
            if count.get() < 5 {
                sim.schedule_in(10, move |sim| tick(sim, count));
            }
        }
        let c = count.clone();
        sim.schedule_at(0, move |sim| tick(sim, c));
        sim.run();
        assert_eq!(count.get(), 5);
        assert_eq!(sim.now(), 40);
    }

    #[test]
    fn cancel_prevents_execution() {
        let mut sim = Simulator::new();
        let fired = Rc::new(Cell::new(false));
        let f = fired.clone();
        let id = sim.schedule_at(10, move |_| f.set(true));
        assert!(sim.cancel(id));
        assert!(!sim.cancel(id), "double cancel reports false");
        sim.run();
        assert!(!fired.get());
    }

    #[test]
    fn cancel_after_fire_is_false() {
        let mut sim = Simulator::new();
        let id = sim.schedule_at(10, |_| {});
        sim.run();
        assert!(!sim.cancel(id));
    }

    #[test]
    fn run_until_advances_clock_past_last_event() {
        let mut sim = Simulator::new();
        sim.schedule_at(10, |_| {});
        sim.schedule_at(100, |_| {});
        sim.run_until(50);
        assert_eq!(sim.now(), 50);
        assert_eq!(sim.events_executed(), 1);
        sim.run_until(200);
        assert_eq!(sim.now(), 200);
        assert_eq!(sim.events_executed(), 2);
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn scheduling_into_past_panics() {
        let mut sim = Simulator::new();
        sim.schedule_at(100, |sim| {
            sim.schedule_at(50, |_| {});
        });
        sim.run();
    }

    #[test]
    fn schedule_in_saturates() {
        let mut sim = Simulator::new();
        sim.schedule_in(Ns::MAX, |_| {});
        // Does not panic; event sits at Ns::MAX.
        assert_eq!(sim.pending(), 1);
    }

    #[test]
    fn many_events_stay_deterministic() {
        let run = || {
            let mut sim = Simulator::new();
            let trace = Rc::new(RefCell::new(Vec::new()));
            for i in 0..1000u64 {
                let trace = trace.clone();
                sim.schedule_at((i * 7919) % 503, move |_| trace.borrow_mut().push(i));
            }
            sim.run();
            let t = trace.borrow().clone();
            t
        };
        assert_eq!(run(), run());
    }
}
