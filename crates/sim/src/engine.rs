//! The discrete-event engine.
//!
//! A [`Simulator`] owns a priority queue of timestamped events. Shared
//! world state lives in `Rc<RefCell<_>>` cells captured by the event
//! actions. Events at equal times fire in a canonical order — by
//! scheduling *lane*, then by per-lane scheduling order (FIFO within a
//! lane) — which makes runs fully deterministic, and deterministic
//! *across execution strategies*: a sharded executor that replays only
//! a subset of each lane's schedule calls still agrees with the
//! single-threaded run on the relative order of every pair of events it
//! executes (see `docs/ARCHITECTURE.md`, "Sharded execution").
//!
//! # Internals
//!
//! The queue is split into two structures tuned for the hot path:
//!
//! * a [`BinaryHeap`] of small `(time, key, slot)` entries — 24 bytes
//!   each, so sift operations move triples, not boxed closures. The
//!   `key` packs `(lane << 40) | lane_seq`, so comparing keys compares
//!   `(lane, lane_seq)` lexicographically and equal-time ties break by
//!   lane id, then by within-lane scheduling order;
//! * a *slab* of event slots holding the actions. Freed slots go on a
//!   free list and are recycled, so a steady-state simulation stops
//!   allocating slab storage entirely.
//!
//! Cancellation is by *key generation*: an [`EventId`] is the
//! `(key, slot)` pair assigned at schedule time. [`Simulator::cancel`]
//! compares the id's key against the slot's current key — a mismatch
//! means the event already fired (or the slot was recycled) — and simply
//! disarms the slot: O(1), no queue surgery. `(lane, lane_seq)` pairs
//! are never reused, so stale ids can never alias a later event. The
//! heap entry becomes a husk that is skipped ("lazy deletion") when it
//! reaches the top.
//!
//! # Lanes
//!
//! Lane 0 is the default: [`Simulator::schedule_at`] and
//! [`Simulator::schedule_shared_at`] put everything there, where
//! equal-time events fire in plain global FIFO order exactly as before.
//! Distinct lanes exist for schedulers whose call *order* is not stable
//! across execution strategies: the sharded scenario executor gives
//! every inter-switch trunk link its own lane, so cells injected at a
//! shard boundary land in the same canonical position the single-
//! threaded run gives them. Within one lane, order is the order of
//! schedule calls on that lane; across lanes at one instant, the lower
//! lane id fires first.
//!
//! Two scheduling flavours share the machinery on every lane:
//!
//! * [`Simulator::schedule_at`] / [`Simulator::schedule_at_on`] — the
//!   generic flavour: one boxed `FnOnce` per event (exactly one heap
//!   allocation);
//! * [`Simulator::schedule_shared_at`] /
//!   [`Simulator::schedule_shared_at_on`] — the allocation-free
//!   flavour: a [`SharedHandler`] (`Rc<RefCell<dyn FnMut …>>`) created
//!   once and scheduled any number of times. Returning `Some(t)` from
//!   the handler reschedules the same handler at `t` *on the lane it
//!   just fired on* without touching the allocator, which is how device
//!   models (audio ticks, camera frame loops) and link cell-trains run
//!   millions of events with zero per-event allocations.

use std::cell::RefCell;
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::rc::Rc;

use crate::time::Ns;

/// A scheduling lane: the major tie-breaker among equal-time events.
///
/// Lane 0 is the general-purpose lane. Other lanes are allocated by
/// schedulers (one per inter-shard trunk link in the sharded executor)
/// that need a schedule order independent of global call interleaving.
pub type Lane = u32;

/// Bits of the packed event key used for the per-lane sequence number.
const SEQ_BITS: u32 = 40;
/// Largest usable lane id (the key packs the lane into the high bits).
pub const MAX_LANE: Lane = ((1u64 << (64 - SEQ_BITS)) - 1) as Lane;

/// Identifier of a scheduled event, usable for cancellation.
///
/// Carries the event's packed `(lane, lane_seq)` key and its slab slot;
/// both are needed so that [`Simulator::cancel`] is O(1) and ids of
/// fired events can never alias a later event that recycled the slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventId {
    key: u64,
    slot: u32,
}

/// A reusable event action for the allocation-free scheduling lane.
///
/// Cloning the `Rc` is all it costs to schedule one, so a handler built
/// once can carry an unbounded stream of events. When the event fires the
/// handler runs with the simulator clock at the event's time; returning
/// `Some(t)` immediately reschedules the same handler at `t` on the same
/// lane (a fresh sequence number, no allocation), `None` lets it rest.
pub type SharedHandler = Rc<RefCell<dyn FnMut(&mut Simulator) -> Option<Ns>>>;

enum Action {
    /// Generic lane: a one-shot boxed closure.
    Once(Box<dyn FnOnce(&mut Simulator)>),
    /// Allocation-free lane: a shared, rescheduleable handler.
    Shared(SharedHandler),
}

/// One slab slot. `key` identifies the event currently occupying the
/// slot; `action` is `None` while the slot is free (or disarmed by
/// cancellation but not yet recycled).
struct Slot {
    key: u64,
    action: Option<Action>,
}

/// What the heap actually sifts: 24 bytes, no payload.
#[derive(Clone, Copy)]
struct Entry {
    time: Ns,
    key: u64,
    slot: u32,
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.key == other.key
    }
}
impl Eq for Entry {}
impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest
        // (time, lane, lane_seq) pops first — the key's high bits are
        // the lane, so the u64 compare is the lexicographic compare.
        (other.time, other.key).cmp(&(self.time, self.key))
    }
}

/// A deterministic discrete-event simulator over virtual nanoseconds.
///
/// # Examples
///
/// ```
/// use pegasus_sim::Simulator;
/// use std::{cell::RefCell, rc::Rc};
///
/// let mut sim = Simulator::new();
/// let hits = Rc::new(RefCell::new(Vec::new()));
/// for t in [30u64, 10, 20] {
///     let hits = hits.clone();
///     sim.schedule_at(t, move |sim| hits.borrow_mut().push(sim.now()));
/// }
/// sim.run();
/// assert_eq!(*hits.borrow(), vec![10, 20, 30]);
/// ```
pub struct Simulator {
    now: Ns,
    /// Next sequence number of each lane, indexed by lane id (grown on
    /// first use; lane 0 always exists).
    lane_seqs: Vec<u64>,
    queue: BinaryHeap<Entry>,
    slots: Vec<Slot>,
    free: Vec<u32>,
    executed: u64,
}

impl Default for Simulator {
    fn default() -> Self {
        Self::new()
    }
}

impl Simulator {
    /// Creates an empty simulator at virtual time zero.
    pub fn new() -> Self {
        Simulator {
            now: 0,
            lane_seqs: vec![0],
            queue: BinaryHeap::new(),
            slots: Vec::new(),
            free: Vec::new(),
            executed: 0,
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> Ns {
        self.now
    }

    /// Number of events executed so far.
    pub fn events_executed(&self) -> u64 {
        self.executed
    }

    /// Number of events still pending (including cancelled husks).
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    fn arm(&mut self, time: Ns, lane: Lane, action: Action) -> EventId {
        assert!(
            time >= self.now,
            "cannot schedule into the past: now={} target={}",
            self.now,
            time
        );
        assert!(lane <= MAX_LANE, "lane {lane} out of range");
        if self.lane_seqs.len() <= lane as usize {
            self.lane_seqs.resize(lane as usize + 1, 0);
        }
        let seq = self.lane_seqs[lane as usize];
        self.lane_seqs[lane as usize] = seq + 1;
        assert!(seq < 1u64 << SEQ_BITS, "lane {lane} sequence exhausted");
        let key = ((lane as u64) << SEQ_BITS) | seq;
        let slot = match self.free.pop() {
            Some(s) => {
                let sl = &mut self.slots[s as usize];
                sl.key = key;
                sl.action = Some(action);
                s
            }
            None => {
                let s = u32::try_from(self.slots.len()).expect("event slot space exhausted");
                self.slots.push(Slot {
                    key,
                    action: Some(action),
                });
                s
            }
        };
        self.queue.push(Entry { time, key, slot });
        EventId { key, slot }
    }

    /// Schedules `action` to run at absolute virtual time `time` on the
    /// default lane (0).
    ///
    /// Scheduling in the past is a logic error and panics; events for the
    /// current instant are allowed and run after all earlier-scheduled
    /// events of the same instant and lane.
    ///
    /// This is the generic flavour: the closure is boxed (one
    /// allocation). Hot paths that fire repeatedly should build a
    /// [`SharedHandler`] once and use [`Self::schedule_shared_at`]
    /// instead.
    ///
    /// # Panics
    ///
    /// Panics if `time` is earlier than [`Self::now`].
    pub fn schedule_at<F>(&mut self, time: Ns, action: F) -> EventId
    where
        F: FnOnce(&mut Simulator) + 'static,
    {
        self.arm(time, 0, Action::Once(Box::new(action)))
    }

    /// Schedules `action` at `time` on an explicit lane.
    ///
    /// Equal-time ties break by lane id first, then by within-lane
    /// scheduling order, so an event's position among its instant-mates
    /// depends only on its own lane's call history — the property the
    /// sharded executor needs to replay a lane's schedule consistently.
    pub fn schedule_at_on<F>(&mut self, lane: Lane, time: Ns, action: F) -> EventId
    where
        F: FnOnce(&mut Simulator) + 'static,
    {
        self.arm(time, lane, Action::Once(Box::new(action)))
    }

    /// Schedules `action` to run `delay` nanoseconds from now.
    pub fn schedule_in<F>(&mut self, delay: Ns, action: F) -> EventId
    where
        F: FnOnce(&mut Simulator) + 'static,
    {
        self.schedule_at(self.now.saturating_add(delay), action)
    }

    /// Schedules a [`SharedHandler`] to run at absolute time `time` on
    /// the default lane (0).
    ///
    /// The allocation-free flavour: only the `Rc` is cloned. The same
    /// handler may be scheduled many times (each call is a distinct
    /// event); when it fires it can reschedule itself by returning
    /// `Some(next_time)`.
    ///
    /// # Panics
    ///
    /// Panics if `time` is earlier than [`Self::now`].
    pub fn schedule_shared_at(&mut self, time: Ns, handler: SharedHandler) -> EventId {
        self.arm(time, 0, Action::Shared(handler))
    }

    /// Schedules a [`SharedHandler`] at `time` on an explicit lane. A
    /// `Some(t)` return from the handler re-arms it on the same lane.
    pub fn schedule_shared_at_on(
        &mut self,
        lane: Lane,
        time: Ns,
        handler: SharedHandler,
    ) -> EventId {
        self.arm(time, lane, Action::Shared(handler))
    }

    /// Schedules a [`SharedHandler`] to run `delay` nanoseconds from now.
    pub fn schedule_shared_in(&mut self, delay: Ns, handler: SharedHandler) -> EventId {
        self.schedule_shared_at(self.now.saturating_add(delay), handler)
    }

    /// Runs `tick` once immediately; for as long as it returns
    /// `Some(next_time)`, the engine re-invokes it at that time on the
    /// allocation-free lane (one handler allocation for the whole chain).
    ///
    /// This is the canonical shape of a device clock — audio sample
    /// ticks, camera frame loops — where the model advances itself until
    /// it decides to stop.
    pub fn schedule_chain<F>(&mut self, mut tick: F)
    where
        F: FnMut(&mut Simulator) -> Option<Ns> + 'static,
    {
        if let Some(t) = tick(self) {
            let handler: SharedHandler = Rc::new(RefCell::new(tick));
            self.schedule_shared_at(t, handler);
        }
    }

    /// Cancels a pending event. Returns `true` if the event had not yet
    /// fired or been cancelled.
    ///
    /// O(1): the slot is disarmed and recycled immediately; the heap
    /// entry is left behind as a husk and skipped when it surfaces.
    pub fn cancel(&mut self, id: EventId) -> bool {
        match self.slots.get_mut(id.slot as usize) {
            Some(slot) if slot.key == id.key && slot.action.is_some() => {
                slot.action = None;
                self.free.push(id.slot);
                true
            }
            _ => false,
        }
    }

    /// Runs a single event; returns `false` when the queue is empty.
    pub fn step(&mut self) -> bool {
        while let Some(entry) = self.queue.pop() {
            let slot = &mut self.slots[entry.slot as usize];
            if slot.key != entry.key || slot.action.is_none() {
                continue; // cancelled husk, or the slot moved on
            }
            let action = slot.action.take().expect("checked above");
            self.free.push(entry.slot);
            debug_assert!(entry.time >= self.now);
            self.now = entry.time;
            self.executed += 1;
            match action {
                Action::Once(f) => f(self),
                Action::Shared(h) => {
                    let next = (h.borrow_mut())(self);
                    if let Some(t) = next {
                        // Re-arm on the lane the event fired on, so a
                        // self-clocking handler stays in its own lane.
                        let lane = (entry.key >> SEQ_BITS) as Lane;
                        self.arm(t, lane, Action::Shared(h));
                    }
                }
            }
            return true;
        }
        false
    }

    /// Runs events until the queue drains.
    pub fn run(&mut self) {
        while self.step() {}
    }

    /// Discards cancelled husks off the top of the heap; returns the fire
    /// time of the next live event.
    fn next_live_time(&mut self) -> Option<Ns> {
        while let Some(entry) = self.queue.peek() {
            let slot = &self.slots[entry.slot as usize];
            if slot.key == entry.key && slot.action.is_some() {
                return Some(entry.time);
            }
            self.queue.pop();
        }
        None
    }

    /// Runs events with timestamps `<= deadline`, then sets the clock to
    /// `deadline` (if it is later than the last event).
    ///
    /// (The pre-slab engine could overshoot the deadline when the queue
    /// top was a cancelled husk timed within it; husks are now discarded
    /// before the deadline check.)
    pub fn run_until(&mut self, deadline: Ns) {
        while self.next_live_time().is_some_and(|t| t <= deadline) {
            self.step();
        }
        if self.now < deadline {
            self.now = deadline;
        }
    }

    /// Runs events with timestamps *strictly before* `deadline`, then
    /// sets the clock to `deadline`.
    ///
    /// This is the epoch primitive of the sharded executor: a shard runs
    /// everything before the barrier time, parks exactly at the barrier,
    /// absorbs the cells its neighbours sealed during the epoch (all
    /// timestamped at or after the barrier — conservative lookahead
    /// guarantees it), and continues.
    pub fn run_before(&mut self, deadline: Ns) {
        while self.next_live_time().is_some_and(|t| t < deadline) {
            self.step();
        }
        if self.now < deadline {
            self.now = deadline;
        }
    }

    /// Runs at most `n` events.
    pub fn run_steps(&mut self, n: u64) {
        for _ in 0..n {
            if !self.step() {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::Cell;
    use std::cell::RefCell;

    #[test]
    fn events_fire_in_time_order() {
        let mut sim = Simulator::new();
        let order = Rc::new(RefCell::new(Vec::new()));
        for (t, tag) in [(50u64, 'c'), (10, 'a'), (30, 'b')] {
            let order = order.clone();
            sim.schedule_at(t, move |_| order.borrow_mut().push(tag));
        }
        sim.run();
        assert_eq!(*order.borrow(), vec!['a', 'b', 'c']);
        assert_eq!(sim.now(), 50);
        assert_eq!(sim.events_executed(), 3);
    }

    #[test]
    fn equal_time_events_fire_fifo() {
        let mut sim = Simulator::new();
        let order = Rc::new(RefCell::new(Vec::new()));
        for tag in 0..16 {
            let order = order.clone();
            sim.schedule_at(100, move |_| order.borrow_mut().push(tag));
        }
        sim.run();
        assert_eq!(*order.borrow(), (0..16).collect::<Vec<_>>());
    }

    #[test]
    fn events_can_schedule_more_events() {
        let mut sim = Simulator::new();
        let count = Rc::new(Cell::new(0u32));
        fn tick(sim: &mut Simulator, count: Rc<Cell<u32>>) {
            count.set(count.get() + 1);
            if count.get() < 5 {
                sim.schedule_in(10, move |sim| tick(sim, count));
            }
        }
        let c = count.clone();
        sim.schedule_at(0, move |sim| tick(sim, c));
        sim.run();
        assert_eq!(count.get(), 5);
        assert_eq!(sim.now(), 40);
    }

    #[test]
    fn cancel_prevents_execution() {
        let mut sim = Simulator::new();
        let fired = Rc::new(Cell::new(false));
        let f = fired.clone();
        let id = sim.schedule_at(10, move |_| f.set(true));
        assert!(sim.cancel(id));
        assert!(!sim.cancel(id), "double cancel reports false");
        sim.run();
        assert!(!fired.get());
    }

    #[test]
    fn cancel_after_fire_is_false() {
        let mut sim = Simulator::new();
        let id = sim.schedule_at(10, |_| {});
        sim.run();
        assert!(!sim.cancel(id));
    }

    #[test]
    fn cancel_after_slot_recycled_is_false() {
        let mut sim = Simulator::new();
        let id = sim.schedule_at(10, |_| {});
        assert!(sim.cancel(id));
        // The new event recycles the cancelled event's slot; the stale id
        // must not be able to cancel it.
        let id2 = sim.schedule_at(20, |_| {});
        assert!(!sim.cancel(id), "stale id must not hit the recycled slot");
        assert!(sim.cancel(id2));
        sim.run();
        assert_eq!(sim.events_executed(), 0);
    }

    #[test]
    fn cancel_inside_handler_stops_same_instant_event() {
        let mut sim = Simulator::new();
        let fired = Rc::new(Cell::new(false));
        let f = fired.clone();
        let victim = sim.schedule_at(10, move |_| f.set(true));
        // Scheduled later at the same instant would normally fire second;
        // but the first handler cancels it from inside the engine loop.
        // (This event was scheduled first, so it fires first.)
        let mut sim2 = Simulator::new();
        let fired2 = Rc::new(Cell::new(false));
        let f2 = fired2.clone();
        let assassin_target = Rc::new(Cell::new(None));
        let t2 = assassin_target.clone();
        sim2.schedule_at(10, move |sim| {
            let id: EventId = t2.get().expect("target registered");
            assert!(sim.cancel(id), "victim still pending at cancel time");
        });
        let victim2 = sim2.schedule_at(10, move |_| f2.set(true));
        assassin_target.set(Some(victim2));
        sim2.run();
        assert!(!fired2.get(), "cancelled-from-handler event must not fire");
        assert_eq!(sim2.events_executed(), 1);
        // The original sim still fires its victim untouched.
        let _ = victim;
        sim.run();
        assert!(fired.get());
    }

    #[test]
    fn run_until_advances_clock_past_last_event() {
        let mut sim = Simulator::new();
        sim.schedule_at(10, |_| {});
        sim.schedule_at(100, |_| {});
        sim.run_until(50);
        assert_eq!(sim.now(), 50);
        assert_eq!(sim.events_executed(), 1);
        sim.run_until(200);
        assert_eq!(sim.now(), 200);
        assert_eq!(sim.events_executed(), 2);
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn scheduling_into_past_panics() {
        let mut sim = Simulator::new();
        sim.schedule_at(100, |sim| {
            sim.schedule_at(50, |_| {});
        });
        sim.run();
    }

    #[test]
    fn schedule_in_saturates() {
        let mut sim = Simulator::new();
        sim.schedule_in(Ns::MAX, |_| {});
        // Does not panic; event sits at Ns::MAX.
        assert_eq!(sim.pending(), 1);
    }

    #[test]
    fn many_events_stay_deterministic() {
        let run = || {
            let mut sim = Simulator::new();
            let trace = Rc::new(RefCell::new(Vec::new()));
            for i in 0..1000u64 {
                let trace = trace.clone();
                sim.schedule_at((i * 7919) % 503, move |_| trace.borrow_mut().push(i));
            }
            sim.run();
            let t = trace.borrow().clone();
            t
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn shared_handler_reschedules_itself_without_new_handles() {
        let mut sim = Simulator::new();
        let hits = Rc::new(RefCell::new(Vec::new()));
        let h = hits.clone();
        let handler: SharedHandler = Rc::new(RefCell::new(move |sim: &mut Simulator| {
            h.borrow_mut().push(sim.now());
            if sim.now() < 50 {
                Some(sim.now() + 10)
            } else {
                None
            }
        }));
        sim.schedule_shared_at(10, handler);
        sim.run();
        assert_eq!(*hits.borrow(), vec![10, 20, 30, 40, 50]);
        assert_eq!(sim.events_executed(), 5);
    }

    #[test]
    fn shared_handler_can_be_scheduled_many_times_and_interleaves_fifo() {
        let mut sim = Simulator::new();
        let hits = Rc::new(RefCell::new(Vec::new()));
        let h = hits.clone();
        let handler: SharedHandler = Rc::new(RefCell::new(move |sim: &mut Simulator| {
            h.borrow_mut().push(('s', sim.now()));
            None
        }));
        let h2 = hits.clone();
        sim.schedule_shared_at(100, handler.clone());
        sim.schedule_at(100, move |sim| h2.borrow_mut().push(('o', sim.now())));
        sim.schedule_shared_at(100, handler.clone());
        sim.schedule_shared_at(40, handler);
        sim.run();
        assert_eq!(
            *hits.borrow(),
            vec![('s', 40), ('s', 100), ('o', 100), ('s', 100)],
            "shared and boxed events interleave strictly by (time, seq)"
        );
    }

    #[test]
    fn shared_handler_events_cancel_like_any_other() {
        let mut sim = Simulator::new();
        let count = Rc::new(Cell::new(0u32));
        let c = count.clone();
        let handler: SharedHandler = Rc::new(RefCell::new(move |_: &mut Simulator| {
            c.set(c.get() + 1);
            None
        }));
        let keep = sim.schedule_shared_at(10, handler.clone());
        let kill = sim.schedule_shared_at(20, handler);
        assert!(sim.cancel(kill));
        sim.run();
        assert_eq!(count.get(), 1);
        assert!(!sim.cancel(keep), "fired event cannot be cancelled");
        assert_eq!(sim.now(), 10, "cancelled husk must not advance the clock");
    }

    #[test]
    fn slots_are_recycled_under_steady_state() {
        let mut sim = Simulator::new();
        // A self-rescheduling handler ticking 10_000 times keeps exactly
        // one slot live, however long it runs.
        let n = Rc::new(Cell::new(0u32));
        let n2 = n.clone();
        let handler: SharedHandler = Rc::new(RefCell::new(move |sim: &mut Simulator| {
            n2.set(n2.get() + 1);
            if n2.get() < 10_000 {
                Some(sim.now() + 1)
            } else {
                None
            }
        }));
        sim.schedule_shared_at(0, handler);
        sim.run();
        assert_eq!(n.get(), 10_000);
        assert!(
            sim.slots.len() <= 2,
            "steady-state chain must recycle slots, used {}",
            sim.slots.len()
        );
    }

    #[test]
    fn run_until_does_not_overshoot_through_cancelled_husk() {
        let mut sim = Simulator::new();
        let fired = Rc::new(Cell::new(false));
        let f = fired.clone();
        let early = sim.schedule_at(10, |_| {});
        sim.schedule_at(1_000, move |_| f.set(true));
        sim.cancel(early);
        // The husk at t=10 is within the deadline; the live event at
        // t=1000 is not and must stay queued.
        sim.run_until(50);
        assert!(!fired.get(), "event beyond the deadline fired");
        assert_eq!(sim.now(), 50);
        sim.run();
        assert!(fired.get());
        assert_eq!(sim.now(), 1_000);
    }

    #[test]
    fn cancel_storm_leaves_no_live_state() {
        let mut sim = Simulator::new();
        let mut ids = Vec::new();
        for i in 0..10_000u64 {
            ids.push(sim.schedule_at(1_000 + i, |_| {}));
        }
        for id in &ids {
            assert!(sim.cancel(*id));
        }
        for id in &ids {
            assert!(!sim.cancel(*id), "second cancel must report false");
        }
        sim.run();
        assert_eq!(sim.events_executed(), 0);
        assert_eq!(sim.pending(), 0);
        assert_eq!(sim.now(), 0, "only husks were queued; the clock must hold");
    }

    #[test]
    fn equal_time_ties_break_by_lane_then_lane_order() {
        let mut sim = Simulator::new();
        let order = Rc::new(RefCell::new(Vec::new()));
        // Schedule in a deliberately scrambled call order; the firing
        // order must sort by (lane, within-lane call order), not by the
        // global call order.
        for (lane, tag) in [(2u32, "c0"), (0, "a0"), (1, "b0"), (2, "c1"), (0, "a1")] {
            let order = order.clone();
            sim.schedule_at_on(lane, 100, move |_| order.borrow_mut().push(tag));
        }
        sim.run();
        assert_eq!(*order.borrow(), vec!["a0", "a1", "b0", "c0", "c1"]);
        assert_eq!(sim.events_executed(), 5);
    }

    #[test]
    fn lane_order_is_independent_of_other_lanes_interleaving() {
        // The property the sharded executor rests on: the relative order
        // of one lane's events depends only on that lane's schedule
        // calls, so dropping the other lane's calls entirely must leave
        // the surviving lane's order untouched.
        let run = |skip_lane_2: bool| {
            let mut sim = Simulator::new();
            let order = Rc::new(RefCell::new(Vec::new()));
            for i in 0..10u64 {
                let order = order.clone();
                sim.schedule_at_on(1, 50, move |_| order.borrow_mut().push(i));
                if !skip_lane_2 {
                    sim.schedule_at_on(2, 50, |_| {});
                }
            }
            sim.run();
            let o = order.borrow().clone();
            o
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn shared_handler_rearms_on_its_own_lane() {
        let mut sim = Simulator::new();
        let hits = Rc::new(RefCell::new(Vec::new()));
        let h = hits.clone();
        // A self-clocking handler on lane 3, racing a lane-0 event at
        // each instant: lane 0 must always win the tie, including on the
        // re-armed occurrences.
        let handler: SharedHandler = Rc::new(RefCell::new(move |sim: &mut Simulator| {
            h.borrow_mut().push(("lane3", sim.now()));
            if sim.now() < 30 {
                Some(sim.now() + 10)
            } else {
                None
            }
        }));
        sim.schedule_shared_at_on(3, 10, handler);
        for t in [10u64, 20, 30] {
            let hits = hits.clone();
            sim.schedule_at(t, move |sim| hits.borrow_mut().push(("lane0", sim.now())));
        }
        sim.run();
        assert_eq!(
            *hits.borrow(),
            vec![
                ("lane0", 10),
                ("lane3", 10),
                ("lane0", 20),
                ("lane3", 20),
                ("lane0", 30),
                ("lane3", 30),
            ]
        );
    }

    #[test]
    fn cancel_works_across_lanes() {
        let mut sim = Simulator::new();
        let fired = Rc::new(Cell::new(0u32));
        let f1 = fired.clone();
        let f2 = fired.clone();
        let keep = sim.schedule_at_on(5, 10, move |_| f1.set(f1.get() + 1));
        let kill = sim.schedule_at_on(5, 20, move |_| f2.set(f2.get() + 10));
        assert!(sim.cancel(kill));
        assert!(!sim.cancel(kill));
        sim.run();
        assert_eq!(fired.get(), 1);
        assert!(!sim.cancel(keep), "fired event cannot be cancelled");
    }

    #[test]
    fn run_before_stops_strictly_at_deadline() {
        let mut sim = Simulator::new();
        let hits = Rc::new(RefCell::new(Vec::new()));
        for t in [10u64, 50, 100] {
            let hits = hits.clone();
            sim.schedule_at(t, move |sim| hits.borrow_mut().push(sim.now()));
        }
        // Events strictly before 50 run; the event AT 50 stays queued.
        sim.run_before(50);
        assert_eq!(*hits.borrow(), vec![10]);
        assert_eq!(sim.now(), 50);
        // Scheduling at exactly the barrier time is legal (the sharded
        // executor injects boundary cells here) and fires before the
        // previously queued same-time event only if its key sorts first.
        let hits2 = hits.clone();
        sim.schedule_at(50, move |sim| hits2.borrow_mut().push(sim.now() + 1));
        sim.run();
        assert_eq!(*hits.borrow(), vec![10, 50, 51, 100]);
        assert_eq!(sim.now(), 100);
    }

    #[test]
    fn run_before_on_empty_queue_advances_clock() {
        let mut sim = Simulator::new();
        sim.run_before(77);
        assert_eq!(sim.now(), 77);
        assert_eq!(sim.events_executed(), 0);
    }
}
