//! Deterministic random numbers for workload generation.
//!
//! Experiments must be reproducible run-to-run, so every stochastic
//! workload (file lifetimes, network jitter, frame content) draws from a
//! [`SmallRng`] seeded explicitly. This module centralizes construction so
//! seeds are never implicit.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Creates a deterministic RNG from a 64-bit seed.
///
/// # Examples
///
/// ```
/// use rand::Rng;
/// let mut a = pegasus_sim::rng::seeded(42);
/// let mut b = pegasus_sim::rng::seeded(42);
/// assert_eq!(a.gen::<u64>(), b.gen::<u64>());
/// ```
pub fn seeded(seed: u64) -> SmallRng {
    SmallRng::seed_from_u64(seed)
}

/// Draws from an exponential distribution with the given mean.
///
/// Used for Poisson inter-arrival times and Baker-style file lifetimes.
pub fn exponential(rng: &mut SmallRng, mean: f64) -> f64 {
    let u: f64 = rng.gen_range(1e-12..1.0);
    -mean * u.ln()
}

/// Draws from a bounded Pareto-ish heavy-tailed distribution, used for
/// file sizes (many small files, a few huge media files).
pub fn heavy_tailed(rng: &mut SmallRng, min: f64, alpha: f64, max: f64) -> f64 {
    let u: f64 = rng.gen_range(1e-12..1.0);
    (min / u.powf(1.0 / alpha)).min(max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = seeded(7);
        let mut b = seeded(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = seeded(1);
        let mut b = seeded(2);
        let va: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn exponential_mean_close() {
        let mut rng = seeded(3);
        let n = 20_000;
        let sum: f64 = (0..n).map(|_| exponential(&mut rng, 10.0)).sum();
        let mean = sum / n as f64;
        assert!((mean - 10.0).abs() < 0.5, "mean={mean}");
    }

    #[test]
    fn exponential_nonnegative() {
        let mut rng = seeded(4);
        for _ in 0..1000 {
            assert!(exponential(&mut rng, 5.0) >= 0.0);
        }
    }

    #[test]
    fn heavy_tailed_bounded() {
        let mut rng = seeded(5);
        for _ in 0..1000 {
            let v = heavy_tailed(&mut rng, 1.0, 1.2, 1000.0);
            assert!((1.0..=1000.0).contains(&v), "{v}");
        }
    }
}
