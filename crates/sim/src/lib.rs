//! Deterministic discrete-event simulation engine for the Pegasus reproduction.
//!
//! The 1994 Pegasus project ran on physical hardware: DECstations, Fairisle
//! ATM switches, a hardware ATM camera. This crate replaces that testbed with
//! a deterministic virtual-time simulator. Every hardware element in the
//! other crates (links, switches, disks, sample clocks) is a model scheduled
//! on this engine, so latency, jitter and throughput experiments are exact
//! functions of the configured timing parameters and are reproducible
//! run-to-run.
//!
//! # Examples
//!
//! ```
//! use pegasus_sim::{Simulator, time};
//!
//! let mut sim = Simulator::new();
//! sim.schedule_in(3 * time::MS, |sim| {
//!     assert_eq!(sim.now(), 3 * time::MS);
//! });
//! sim.run();
//! assert_eq!(sim.now(), 3 * time::MS);
//! ```

pub mod arena;
pub mod engine;
pub mod rng;
pub mod stats;
pub mod time;

pub use arena::{Arena, ArenaStats, FrameBuf, FrameBufMut, FrameView};
pub use engine::{EventId, Lane, SharedHandler, Simulator, MAX_LANE};
pub use stats::{Counter, Histogram, TimeWeighted};
pub use time::Ns;
