//! The frame-buffer arena: reference-counted, immutable media buffers.
//!
//! Pegasus puts every machine in one distributed address space precisely
//! so that "multimedia data can be moved between the producers and the
//! consumers of such data efficiently" — without copying at each
//! subsystem boundary. This module is that argument made concrete for
//! the reproduction: a [`FrameBuf`] is an immutable byte buffer leased
//! from an [`Arena`]; a [`FrameView`] is a cheap `(buffer, offset, len)`
//! slice of one. Devices render into a leased buffer, AAL5 segmentation
//! takes 48-byte views of it, the switch fabric forwards those views by
//! refcount bump, and reassembly on the far side stitches them back into
//! a single view of the original buffer — the payload bytes are written
//! once and never copied on the path.
//!
//! The engine is single-threaded, so reference counting is plain
//! non-atomic [`Rc`]; "lease accounting" is deterministic integer
//! bookkeeping, not atomics. Returned buffers go back on the arena's
//! free list with their capacity intact, so a steady-state pipeline
//! stops allocating entirely.
//!
//! # Lease discipline
//!
//! * [`Arena::lease`] grants a [`FrameBufMut`] — the one window in a
//!   buffer's life where it may be written.
//! * [`FrameBufMut::freeze`] seals it into an immutable [`FrameBuf`];
//!   clones and [`FrameView`]s only bump the refcount.
//! * When the last handle drops, the backing storage returns to the
//!   arena pool and the lease is counted as returned.
//!
//! The invariants the property tests pin down: every lease granted is
//! eventually returned, `outstanding` never underflows, and the pool's
//! high-water mark equals the number of fresh allocations — a buffer is
//! only ever created when every previously created buffer is still
//! leased out.
//!
//! # Examples
//!
//! ```
//! use pegasus_sim::arena::Arena;
//!
//! let arena = Arena::new();
//! let mut lease = arena.lease();
//! lease.extend_from_slice(b"one frame of media data");
//! let frame = lease.freeze();
//! let view = frame.view(4, 5);
//! assert_eq!(&*view, b"frame");
//! drop(view);
//! drop(frame); // storage returns to the pool …
//! let again = arena.lease(); // … and is recycled, not reallocated
//! assert_eq!(arena.stats().fresh_allocs, 1);
//! drop(again);
//! ```

use std::cell::{Cell, RefCell};
use std::fmt;
use std::ops::{Deref, DerefMut};
use std::rc::Rc;

/// Deterministic lease-accounting counters of one [`Arena`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ArenaStats {
    /// Leases handed out by [`Arena::lease`].
    pub leases_granted: u64,
    /// Leases whose storage has come back to the pool.
    pub leases_returned: u64,
    /// Leases currently out (granted − returned).
    pub outstanding: u64,
    /// Peak simultaneous outstanding leases.
    pub high_water: u64,
    /// Leases that had to allocate fresh storage (pool was empty). In a
    /// steady-state pipeline this stops growing: recycling covers every
    /// subsequent lease.
    pub fresh_allocs: u64,
    /// Shared-lease attaches: additional consumers joined onto an
    /// already-frozen buffer via [`FrameBuf::attach`]. Each attach is a
    /// viewer served without a lease, a copy, or an allocation — the
    /// fan-out currency of the content cache's hot tier.
    pub shared_attaches: u64,
}

/// Shared state behind an [`Arena`] and every buffer it has leased.
#[derive(Default)]
struct ArenaInner {
    pool: RefCell<Vec<Vec<u8>>>,
    granted: Cell<u64>,
    returned: Cell<u64>,
    high_water: Cell<u64>,
    fresh: Cell<u64>,
    shared: Cell<u64>,
}

impl ArenaInner {
    fn take_storage(self: &Rc<Self>) -> Vec<u8> {
        let recycled = self.pool.borrow_mut().pop();
        if recycled.is_none() {
            self.fresh.set(self.fresh.get() + 1);
        }
        self.granted.set(self.granted.get() + 1);
        let out = self.granted.get() - self.returned.get();
        if out > self.high_water.get() {
            self.high_water.set(out);
        }
        recycled.unwrap_or_default()
    }

    fn recycle(&self, mut storage: Vec<u8>) {
        self.returned.set(self.returned.get() + 1);
        debug_assert!(
            self.returned.get() <= self.granted.get(),
            "arena lease refcount went negative"
        );
        storage.clear();
        self.pool.borrow_mut().push(storage);
    }
}

/// A pool of recyclable media buffers with deterministic lease
/// accounting. Cloning an `Arena` yields another handle to the same
/// pool.
#[derive(Clone, Default)]
pub struct Arena {
    inner: Rc<ArenaInner>,
}

impl Arena {
    /// Creates an empty arena.
    pub fn new() -> Self {
        Arena::default()
    }

    /// Leases a writable, initially empty buffer (recycled capacity when
    /// the pool has one).
    pub fn lease(&self) -> FrameBufMut {
        FrameBufMut {
            data: Some(self.inner.take_storage()),
            arena: self.inner.clone(),
        }
    }

    /// Leases a buffer of `len` zero bytes.
    pub fn lease_zeroed(&self, len: usize) -> FrameBufMut {
        let mut b = self.lease();
        b.resize(len, 0);
        b
    }

    /// Leases, fills with `bytes`, and freezes in one step.
    pub fn frame_from(&self, bytes: &[u8]) -> FrameBuf {
        let mut b = self.lease();
        b.extend_from_slice(bytes);
        b.freeze()
    }

    /// Current lease-accounting counters.
    pub fn stats(&self) -> ArenaStats {
        let i = &self.inner;
        ArenaStats {
            leases_granted: i.granted.get(),
            leases_returned: i.returned.get(),
            outstanding: i.granted.get() - i.returned.get(),
            high_water: i.high_water.get(),
            fresh_allocs: i.fresh.get(),
            shared_attaches: i.shared.get(),
        }
    }

    /// Buffers resting in the free pool right now.
    pub fn pooled(&self) -> usize {
        self.inner.pool.borrow().len()
    }
}

impl fmt::Debug for Arena {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Arena")
            .field("stats", &self.stats())
            .finish()
    }
}

/// A leased buffer in its writable phase. Dereferences to `Vec<u8>`, so
/// the producer fills it with the usual `extend_from_slice` / `resize`
/// vocabulary, then seals it with [`FrameBufMut::freeze`]. Dropping an
/// unfrozen lease returns the storage to the pool.
pub struct FrameBufMut {
    /// `Some` until frozen or dropped.
    data: Option<Vec<u8>>,
    arena: Rc<ArenaInner>,
}

impl FrameBufMut {
    /// Seals the buffer: from here on it is immutable and shared by
    /// refcount.
    pub fn freeze(mut self) -> FrameBuf {
        let data = self.data.take().expect("unfrozen lease holds storage");
        FrameBuf(Rc::new(FrameInner {
            data,
            arena: self.arena.clone(),
        }))
    }
}

impl Deref for FrameBufMut {
    type Target = Vec<u8>;
    fn deref(&self) -> &Vec<u8> {
        self.data.as_ref().expect("unfrozen lease holds storage")
    }
}

impl DerefMut for FrameBufMut {
    fn deref_mut(&mut self) -> &mut Vec<u8> {
        self.data.as_mut().expect("unfrozen lease holds storage")
    }
}

impl Drop for FrameBufMut {
    fn drop(&mut self) {
        if let Some(data) = self.data.take() {
            self.arena.recycle(data);
        }
    }
}

impl fmt::Debug for FrameBufMut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "FrameBufMut({} bytes)", self.len())
    }
}

struct FrameInner {
    data: Vec<u8>,
    arena: Rc<ArenaInner>,
}

impl Drop for FrameInner {
    fn drop(&mut self) {
        self.arena.recycle(std::mem::take(&mut self.data));
    }
}

/// An immutable, reference-counted frame buffer. `Clone` is a refcount
/// bump; the bytes live until the last [`FrameBuf`] or [`FrameView`]
/// over them drops, at which point the storage returns to its arena.
#[derive(Clone)]
pub struct FrameBuf(Rc<FrameInner>);

impl FrameBuf {
    /// A view of `len` bytes starting at `offset`.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn view(&self, offset: usize, len: usize) -> FrameView {
        assert!(offset + len <= self.0.data.len(), "view out of bounds");
        FrameView {
            buf: self.clone(),
            offset,
            len,
        }
    }

    /// A view of the whole buffer.
    pub fn view_all(&self) -> FrameView {
        self.view(0, self.0.data.len())
    }

    /// Whether two handles share one underlying buffer (identity, not
    /// byte equality).
    pub fn same_buffer(a: &FrameBuf, b: &FrameBuf) -> bool {
        Rc::ptr_eq(&a.0, &b.0)
    }

    /// Number of live handles (buffers + views) on this storage.
    pub fn handle_count(&self) -> usize {
        Rc::strong_count(&self.0)
    }

    /// Attaches another consumer to this buffer: a refcount bump that the
    /// arena counts as a *shared* lease. The storage is still one lease
    /// deep in the accounting (`outstanding` and `fresh_allocs` do not
    /// move), so N viewers of one cached title cost one buffer — the
    /// counter records how many rode along for free.
    pub fn attach(&self) -> FrameBuf {
        let a = &self.0.arena;
        a.shared.set(a.shared.get() + 1);
        self.clone()
    }
}

impl Deref for FrameBuf {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0.data
    }
}

impl fmt::Debug for FrameBuf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "FrameBuf({} bytes, {} handles)",
            self.0.data.len(),
            self.handle_count()
        )
    }
}

impl PartialEq for FrameBuf {
    fn eq(&self, other: &Self) -> bool {
        self[..] == other[..]
    }
}
impl Eq for FrameBuf {}

/// A `(buffer, offset, len)` slice of a [`FrameBuf`]. `Clone` is a
/// refcount bump — this is the currency the zero-copy data path trades
/// in: cell payloads, reassembled frames, and storage reads are all
/// views.
#[derive(Clone)]
pub struct FrameView {
    buf: FrameBuf,
    offset: usize,
    len: usize,
}

impl FrameView {
    /// The view's offset within its buffer.
    pub fn offset(&self) -> usize {
        self.offset
    }

    /// Length in bytes.
    #[allow(clippy::len_without_is_empty)]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the view covers zero bytes.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The underlying buffer handle.
    pub fn buf(&self) -> &FrameBuf {
        &self.buf
    }

    /// A sub-view: `len` bytes starting `offset` into this view.
    ///
    /// # Panics
    ///
    /// Panics if the range leaves the view.
    pub fn slice(&self, offset: usize, len: usize) -> FrameView {
        assert!(offset + len <= self.len, "sub-view out of bounds");
        FrameView {
            buf: self.buf.clone(),
            offset: self.offset + offset,
            len,
        }
    }

    /// Whether two views share one underlying buffer.
    pub fn same_buffer(&self, other: &FrameView) -> bool {
        FrameBuf::same_buffer(&self.buf, &other.buf)
    }

    /// Whether `next` begins exactly where this view ends, in the same
    /// buffer — the reassembly stitch test.
    pub fn contiguous_with(&self, next: &FrameView) -> bool {
        self.same_buffer(next) && self.offset + self.len == next.offset
    }

    /// Extends this view over an adjacent one; `None` unless
    /// [`FrameView::contiguous_with`] holds.
    pub fn join(&self, next: &FrameView) -> Option<FrameView> {
        if self.contiguous_with(next) {
            Some(FrameView {
                buf: self.buf.clone(),
                offset: self.offset,
                len: self.len + next.len,
            })
        } else {
            None
        }
    }

    /// In-place [`FrameView::join`]: grows this view over `next` and
    /// returns `true` when contiguous, with no refcount traffic — the
    /// reassembler's per-cell stitch.
    pub fn try_extend(&mut self, next: &FrameView) -> bool {
        if self.contiguous_with(next) {
            self.len += next.len;
            true
        } else {
            false
        }
    }
}

impl Deref for FrameView {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.buf[self.offset..self.offset + self.len]
    }
}

impl fmt::Debug for FrameView {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "FrameView(+{}, {} bytes)", self.offset, self.len)
    }
}

impl PartialEq for FrameView {
    fn eq(&self, other: &Self) -> bool {
        self[..] == other[..]
    }
}
impl Eq for FrameView {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lease_freeze_view_roundtrip() {
        let arena = Arena::new();
        let mut b = arena.lease();
        b.extend_from_slice(b"hello arena");
        let f = b.freeze();
        assert_eq!(&f[..5], b"hello");
        let v = f.view(6, 5);
        assert_eq!(&*v, b"arena");
        assert_eq!(v.offset(), 6);
        assert_eq!(v.len(), 5);
    }

    #[test]
    fn storage_recycles_and_accounting_balances() {
        let arena = Arena::new();
        for _ in 0..10 {
            let mut b = arena.lease();
            b.extend_from_slice(&[7u8; 1000]);
            let f = b.freeze();
            let v = f.view_all();
            drop(f);
            drop(v);
        }
        let s = arena.stats();
        assert_eq!(s.leases_granted, 10);
        assert_eq!(s.leases_returned, 10);
        assert_eq!(s.outstanding, 0);
        assert_eq!(s.high_water, 1);
        assert_eq!(s.fresh_allocs, 1, "nine of ten leases recycled");
        assert_eq!(arena.pooled(), 1);
    }

    #[test]
    fn views_keep_storage_alive() {
        let arena = Arena::new();
        let f = arena.frame_from(b"persistent");
        let v = f.view(0, 4);
        drop(f);
        assert_eq!(arena.stats().outstanding, 1, "view still holds the lease");
        assert_eq!(&*v, b"pers");
        drop(v);
        assert_eq!(arena.stats().outstanding, 0);
    }

    #[test]
    fn dropping_unfrozen_lease_returns_storage() {
        let arena = Arena::new();
        let mut b = arena.lease();
        b.extend_from_slice(&[1, 2, 3]);
        drop(b);
        let s = arena.stats();
        assert_eq!(s.leases_returned, 1);
        assert_eq!(arena.pooled(), 1);
    }

    #[test]
    fn contiguity_and_join() {
        let arena = Arena::new();
        let f = arena.frame_from(&[0u8; 100]);
        let a = f.view(0, 48);
        let b = f.view(48, 48);
        let c = f.view(50, 10);
        assert!(a.contiguous_with(&b));
        assert!(!a.contiguous_with(&c));
        let ab = a.join(&b).expect("adjacent");
        assert_eq!((ab.offset(), ab.len()), (0, 96));
        assert!(a.join(&c).is_none());
        // Identical bytes in a different buffer are not contiguous.
        let g = arena.frame_from(&[0u8; 100]);
        assert!(!a.contiguous_with(&g.view(48, 48)));
        assert!(a.same_buffer(&b));
        assert!(!a.same_buffer(&g.view_all()));
    }

    #[test]
    fn sub_views_compose() {
        let arena = Arena::new();
        let f = arena.frame_from(b"abcdefghij");
        let v = f.view(2, 6); // cdefgh
        let w = v.slice(1, 3); // def
        assert_eq!(&*w, b"def");
        assert_eq!(w.offset(), 3);
    }

    #[test]
    fn fresh_allocs_track_concurrent_peak() {
        let arena = Arena::new();
        let a = arena.frame_from(&[1]);
        let b = arena.frame_from(&[2]);
        let c = arena.frame_from(&[3]);
        drop((a, b, c));
        let d = arena.frame_from(&[4]);
        drop(d);
        let s = arena.stats();
        assert_eq!(s.fresh_allocs, 3);
        assert_eq!(s.high_water, 3);
    }

    #[test]
    fn attach_counts_shared_leases_without_touching_lease_accounting() {
        let arena = Arena::new();
        let f = arena.frame_from(b"one title, many viewers");
        let viewers: Vec<FrameBuf> = (0..8).map(|_| f.attach()).collect();
        let s = arena.stats();
        assert_eq!(s.shared_attaches, 8);
        assert_eq!(s.leases_granted, 1, "attaches are not leases");
        assert_eq!(s.outstanding, 1);
        assert_eq!(s.fresh_allocs, 1, "one buffer serves all nine handles");
        assert!(viewers.iter().all(|v| FrameBuf::same_buffer(v, &f)));
        drop(viewers);
        drop(f);
        assert_eq!(arena.stats().outstanding, 0);
    }

    #[test]
    #[should_panic(expected = "view out of bounds")]
    fn view_bounds_checked() {
        let arena = Arena::new();
        let f = arena.frame_from(&[0u8; 4]);
        let _ = f.view(2, 3);
    }
}
