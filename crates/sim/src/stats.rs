//! Measurement primitives shared by every experiment.
//!
//! Three kinds of statistic cover the paper's claims:
//! * [`Counter`] — monotone event/byte counts (e.g. "media bytes touched
//!   by the CPU").
//! * [`Histogram`] — sample distributions with percentiles (latency,
//!   jitter, skew).
//! * [`TimeWeighted`] — time-averaged gauges (queue depth, buffer
//!   occupancy, share of CPU received).

use crate::time::Ns;

/// A monotone counter.
#[derive(Debug, Default, Clone)]
pub struct Counter {
    value: u64,
}

impl Counter {
    /// Creates a counter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `n` to the counter.
    pub fn add(&mut self, n: u64) {
        self.value += n;
    }

    /// Increments the counter by one.
    pub fn inc(&mut self) {
        self.value += 1;
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value
    }
}

/// A sample histogram with exact storage of every sample.
///
/// Experiments collect at most a few million samples, so exact storage is
/// affordable and keeps percentile computation simple and precise.
#[derive(Debug, Default, Clone)]
pub struct Histogram {
    samples: Vec<u64>,
    sorted: bool,
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample.
    pub fn record(&mut self, v: u64) {
        self.samples.push(v);
        self.sorted = false;
    }

    /// Number of samples recorded.
    pub fn count(&self) -> usize {
        self.samples.len()
    }

    /// Returns `true` when no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Smallest sample, or `None` when empty.
    pub fn min(&self) -> Option<u64> {
        self.samples.iter().copied().min()
    }

    /// Largest sample, or `None` when empty.
    pub fn max(&self) -> Option<u64> {
        self.samples.iter().copied().max()
    }

    /// Arithmetic mean, or `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        if self.samples.is_empty() {
            None
        } else {
            Some(self.samples.iter().map(|&v| v as f64).sum::<f64>() / self.samples.len() as f64)
        }
    }

    /// Population standard deviation, or `None` when empty.
    pub fn stddev(&self) -> Option<f64> {
        let mean = self.mean()?;
        let var = self
            .samples
            .iter()
            .map(|&v| {
                let d = v as f64 - mean;
                d * d
            })
            .sum::<f64>()
            / self.samples.len() as f64;
        Some(var.sqrt())
    }

    /// The `p`-th percentile (0.0–100.0) using nearest-rank, or `None`
    /// when empty.
    pub fn percentile(&mut self, p: f64) -> Option<u64> {
        if self.samples.is_empty() {
            return None;
        }
        if !self.sorted {
            self.samples.sort_unstable();
            self.sorted = true;
        }
        let rank = ((p / 100.0) * self.samples.len() as f64).ceil() as usize;
        let idx = rank.clamp(1, self.samples.len()) - 1;
        Some(self.samples[idx])
    }

    /// Median (50th percentile).
    pub fn median(&mut self) -> Option<u64> {
        self.percentile(50.0)
    }

    /// Peak-to-peak jitter: `max - min`.
    pub fn jitter(&self) -> Option<u64> {
        Some(self.max()? - self.min()?)
    }

    /// Absorbs every sample of `other` into `self`.
    ///
    /// Scenario reports merge per-session histograms into per-class
    /// distributions this way; the merge is order-insensitive as far as
    /// any percentile or moment is concerned.
    pub fn merge(&mut self, other: &Histogram) {
        self.samples.extend_from_slice(&other.samples);
        self.sorted = false;
    }

    /// The jitter view of the distribution: every sample's excess over
    /// the smallest sample.
    ///
    /// For a latency histogram of one stream, the minimum is the fixed
    /// transport delay and the excess is the queueing-induced variation,
    /// so percentiles of this view are per-stream jitter percentiles.
    pub fn jitter_histogram(&self) -> Histogram {
        let base = self.min().unwrap_or(0);
        Histogram {
            samples: self.samples.iter().map(|&v| v - base).collect(),
            sorted: self.sorted,
        }
    }

    /// Captures the distribution as a plain [`Summary`] (all zeros when
    /// empty), for embedding in serialized reports.
    pub fn summarize(&mut self) -> Summary {
        if self.samples.is_empty() {
            return Summary::default();
        }
        Summary {
            n: self.count() as u64,
            min: self.min().unwrap(),
            p50: self.percentile(50.0).unwrap(),
            p90: self.percentile(90.0).unwrap(),
            p99: self.percentile(99.0).unwrap(),
            max: self.max().unwrap(),
            mean: self.mean().unwrap(),
        }
    }

    /// One-line summary suitable for experiment tables.
    pub fn summary(&mut self) -> String {
        if self.samples.is_empty() {
            return "n=0".to_string();
        }
        format!(
            "n={} min={} p50={} p99={} max={} mean={:.1}",
            self.count(),
            self.min().unwrap(),
            self.percentile(50.0).unwrap(),
            self.percentile(99.0).unwrap(),
            self.max().unwrap(),
            self.mean().unwrap(),
        )
    }
}

/// A value-typed snapshot of a [`Histogram`]: the fields every report
/// table needs, detached from the sample storage.
///
/// `Histogram::summarize` produces one; scenario reports serialize them.
#[derive(Debug, Default, Clone, PartialEq)]
pub struct Summary {
    /// Sample count.
    pub n: u64,
    /// Smallest sample.
    pub min: u64,
    /// Median.
    pub p50: u64,
    /// 90th percentile.
    pub p90: u64,
    /// 99th percentile.
    pub p99: u64,
    /// Largest sample.
    pub max: u64,
    /// Arithmetic mean.
    pub mean: f64,
}

/// A time-weighted gauge: integrates `value × dt` so that `average()`
/// yields the time average over the observation window.
#[derive(Debug, Clone)]
pub struct TimeWeighted {
    last_time: Ns,
    last_value: f64,
    weighted_sum: f64,
    start: Ns,
}

impl TimeWeighted {
    /// Creates a gauge with initial `value` observed at `time`.
    pub fn new(time: Ns, value: f64) -> Self {
        TimeWeighted {
            last_time: time,
            last_value: value,
            weighted_sum: 0.0,
            start: time,
        }
    }

    /// Records a new value at `time` (must not precede the previous update).
    pub fn set(&mut self, time: Ns, value: f64) {
        debug_assert!(time >= self.last_time);
        self.weighted_sum += self.last_value * (time - self.last_time) as f64;
        self.last_time = time;
        self.last_value = value;
    }

    /// Time-weighted average from creation until `time`.
    pub fn average(&self, time: Ns) -> f64 {
        let total =
            self.weighted_sum + self.last_value * (time.saturating_sub(self.last_time)) as f64;
        let span = time.saturating_sub(self.start) as f64;
        if span == 0.0 {
            self.last_value
        } else {
            total / span
        }
    }

    /// Most recently set value.
    pub fn current(&self) -> f64 {
        self.last_value
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_counts() {
        let mut c = Counter::new();
        c.inc();
        c.add(10);
        assert_eq!(c.get(), 11);
    }

    #[test]
    fn histogram_empty_is_none() {
        let mut h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        assert_eq!(h.mean(), None);
        assert_eq!(h.percentile(50.0), None);
        assert_eq!(h.jitter(), None);
        assert_eq!(h.summary(), "n=0");
    }

    #[test]
    fn histogram_basic_stats() {
        let mut h = Histogram::new();
        for v in [1u64, 2, 3, 4, 5] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.min(), Some(1));
        assert_eq!(h.max(), Some(5));
        assert_eq!(h.mean(), Some(3.0));
        assert_eq!(h.median(), Some(3));
        assert_eq!(h.jitter(), Some(4));
    }

    #[test]
    fn histogram_percentiles_nearest_rank() {
        let mut h = Histogram::new();
        for v in 1..=100u64 {
            h.record(v);
        }
        assert_eq!(h.percentile(1.0), Some(1));
        assert_eq!(h.percentile(50.0), Some(50));
        assert_eq!(h.percentile(99.0), Some(99));
        assert_eq!(h.percentile(100.0), Some(100));
    }

    #[test]
    fn histogram_stddev() {
        let mut h = Histogram::new();
        for v in [2u64, 4, 4, 4, 5, 5, 7, 9] {
            h.record(v);
        }
        let sd = h.stddev().unwrap();
        assert!((sd - 2.0).abs() < 1e-9, "{sd}");
    }

    #[test]
    fn histogram_percentile_after_more_records_resorts() {
        let mut h = Histogram::new();
        h.record(10);
        assert_eq!(h.percentile(50.0), Some(10));
        h.record(1);
        assert_eq!(h.percentile(50.0), Some(1));
    }

    #[test]
    fn merge_combines_samples() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for v in [1u64, 3, 5] {
            a.record(v);
        }
        for v in [2u64, 4] {
            b.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), 5);
        assert_eq!(a.median(), Some(3));
        assert_eq!(a.max(), Some(5));
    }

    #[test]
    fn jitter_histogram_subtracts_the_floor() {
        let mut h = Histogram::new();
        for v in [100u64, 105, 130] {
            h.record(v);
        }
        let mut j = h.jitter_histogram();
        assert_eq!(j.min(), Some(0));
        assert_eq!(j.max(), Some(30));
        assert_eq!(j.percentile(50.0), Some(5));
    }

    #[test]
    fn summarize_matches_accessors() {
        let mut h = Histogram::new();
        for v in 1..=100u64 {
            h.record(v);
        }
        let s = h.summarize();
        assert_eq!(s.n, 100);
        assert_eq!(s.min, 1);
        assert_eq!(s.p50, 50);
        assert_eq!(s.p90, 90);
        assert_eq!(s.p99, 99);
        assert_eq!(s.max, 100);
        assert!((s.mean - 50.5).abs() < 1e-9);
        assert_eq!(Histogram::new().summarize(), Summary::default());
    }

    #[test]
    fn time_weighted_average() {
        let mut g = TimeWeighted::new(0, 0.0);
        g.set(10, 10.0); // value 0 for 10 ns
        g.set(20, 0.0); // value 10 for 10 ns
                        // Average over [0, 20): (0*10 + 10*10) / 20 = 5.
        assert!((g.average(20) - 5.0).abs() < 1e-9);
        // Extending the window at value 0 dilutes it: 100/40 = 2.5.
        assert!((g.average(40) - 2.5).abs() < 1e-9);
    }

    #[test]
    fn time_weighted_zero_span() {
        let g = TimeWeighted::new(5, 7.0);
        assert_eq!(g.average(5), 7.0);
        assert_eq!(g.current(), 7.0);
    }
}
