//! Virtual-time units.
//!
//! All simulated time in the workspace is expressed in nanoseconds as a
//! plain `u64`. Helper constants and formatting keep call sites readable.

/// Virtual time in nanoseconds.
pub type Ns = u64;

/// One microsecond in [`Ns`].
pub const US: Ns = 1_000;
/// One millisecond in [`Ns`].
pub const MS: Ns = 1_000_000;
/// One second in [`Ns`].
pub const SEC: Ns = 1_000_000_000;

/// Formats a nanosecond quantity with an adaptive unit (ns/µs/ms/s).
///
/// # Examples
///
/// ```
/// assert_eq!(pegasus_sim::time::fmt_ns(1_500), "1.500µs");
/// assert_eq!(pegasus_sim::time::fmt_ns(42), "42ns");
/// ```
pub fn fmt_ns(t: Ns) -> String {
    if t >= SEC {
        format!("{:.3}s", t as f64 / SEC as f64)
    } else if t >= MS {
        format!("{:.3}ms", t as f64 / MS as f64)
    } else if t >= US {
        format!("{:.3}µs", t as f64 / US as f64)
    } else {
        format!("{t}ns")
    }
}

/// Converts a byte count and a line rate in bits/second into the time it
/// takes to serialize those bytes onto the line.
///
/// Rounds up so that back-to-back transmissions never overlap.
///
/// # Examples
///
/// ```
/// use pegasus_sim::time::tx_time;
/// // 53-byte ATM cell on a 100 Mbit/s link: 4.24 µs.
/// assert_eq!(tx_time(53, 100_000_000), 4_240);
/// ```
pub fn tx_time(bytes: usize, bits_per_sec: u64) -> Ns {
    let bits = bytes as u128 * 8;
    let ns = bits * 1_000_000_000u128;
    ns.div_ceil(bits_per_sec as u128) as Ns
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_relate() {
        assert_eq!(US * 1000, MS);
        assert_eq!(MS * 1000, SEC);
    }

    #[test]
    fn fmt_picks_unit() {
        assert_eq!(fmt_ns(12), "12ns");
        assert_eq!(fmt_ns(12 * US), "12.000µs");
        assert_eq!(fmt_ns(12 * MS), "12.000ms");
        assert_eq!(fmt_ns(12 * SEC), "12.000s");
    }

    #[test]
    fn tx_time_rounds_up() {
        // 1 byte at 3 bit/s = 8/3 s, rounded up.
        assert_eq!(tx_time(1, 3), 2_666_666_667);
    }

    #[test]
    fn tx_time_zero_bytes() {
        assert_eq!(tx_time(0, 100_000_000), 0);
    }

    #[test]
    fn tx_time_cell_on_155mbps() {
        // OC-3-ish rate: 53 bytes * 8 / 155.52 Mbit/s ≈ 2.726 µs.
        let t = tx_time(53, 155_520_000);
        assert!((2_720..2_730).contains(&t), "{t}");
    }
}
