//! Property tests for the arena's lease-conservation invariants.
//!
//! The zero-copy data path rests on deterministic lease accounting:
//! every lease granted is eventually returned, the outstanding count
//! never underflows, and the arena only allocates fresh storage when
//! every previously created buffer is simultaneously leased out (so the
//! number of buffers ever created — the slab's high-water mark — is
//! bounded by the peak number of live frames, never by traffic volume).

use pegasus_sim::arena::{Arena, FrameBuf, FrameView};
use proptest::prelude::*;

/// Number of distinct underlying buffers alive across both handle sets.
fn distinct_live(bufs: &[FrameBuf], views: &[FrameView]) -> u64 {
    let mut reps: Vec<&FrameBuf> = Vec::new();
    for b in bufs.iter().chain(views.iter().map(|v| v.buf())) {
        if !reps.iter().any(|r| FrameBuf::same_buffer(r, b)) {
            reps.push(b);
        }
    }
    reps.len() as u64
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Drive a random sequence of lease / view / drop operations and
    /// check the books after every step.
    #[test]
    fn prop_lease_conservation(
        ops in proptest::collection::vec((0u8..5, any::<u8>()), 1..120),
    ) {
        let arena = Arena::new();
        let mut bufs: Vec<FrameBuf> = Vec::new();
        let mut views: Vec<FrameView> = Vec::new();
        let mut peak_live = 0u64;
        for (op, arg) in ops {
            let arg = arg as usize;
            match op {
                // Lease, fill, freeze.
                0 => {
                    let mut lease = arena.lease();
                    lease.resize(arg + 1, arg as u8);
                    bufs.push(lease.freeze());
                }
                // Take a view of a random buffer.
                1 if !bufs.is_empty() => {
                    let b = &bufs[arg % bufs.len()];
                    let len = arg % (b.len() + 1);
                    views.push(b.view(b.len() - len, len));
                }
                // Drop a buffer handle.
                2 if !bufs.is_empty() => {
                    bufs.swap_remove(arg % bufs.len());
                }
                // Drop a view.
                3 if !views.is_empty() => {
                    views.swap_remove(arg % views.len());
                }
                // Sub-slice an existing view (replacing it).
                4 if !views.is_empty() => {
                    let i = arg % views.len();
                    let v = &views[i];
                    let len = arg % (v.len() + 1);
                    views[i] = v.slice(0, len);
                }
                _ => {}
            }
            let live = distinct_live(&bufs, &views);
            peak_live = peak_live.max(live);
            let s = arena.stats();
            // Conservation: granted = returned + outstanding, and the
            // outstanding leases are exactly the live buffers.
            prop_assert_eq!(s.leases_granted, s.leases_returned + s.outstanding);
            prop_assert_eq!(s.outstanding, live);
            // The pool never creates storage unless everything already
            // created is out — so created-ever equals the high-water
            // mark, which is bounded by the peak of live frames.
            prop_assert_eq!(s.fresh_allocs, s.high_water);
            prop_assert!(s.high_water <= peak_live.max(1));
            // Free storage plus outstanding leases account for every
            // buffer ever created.
            prop_assert_eq!(arena.pooled() as u64 + s.outstanding, s.fresh_allocs);
        }
        // Every lease returns once the handles go.
        bufs.clear();
        views.clear();
        let s = arena.stats();
        prop_assert_eq!(s.outstanding, 0);
        prop_assert_eq!(s.leases_returned, s.leases_granted);
        prop_assert_eq!(arena.pooled() as u64, s.fresh_allocs);
    }

    /// A producer/consumer pipeline with bounded in-flight frames never
    /// grows the slab past the in-flight bound, regardless of volume.
    #[test]
    fn prop_high_water_bounded_by_in_flight(
        frames in 1usize..200,
        in_flight in 1usize..8,
        size in 1usize..2048,
    ) {
        let arena = Arena::new();
        let mut queue: Vec<FrameBuf> = Vec::new();
        for n in 0..frames {
            if queue.len() == in_flight {
                queue.remove(0); // consumer releases the oldest frame
            }
            let mut lease = arena.lease();
            lease.resize(size, n as u8);
            queue.push(lease.freeze());
        }
        let s = arena.stats();
        prop_assert_eq!(s.leases_granted, frames as u64);
        prop_assert!(s.fresh_allocs <= in_flight as u64 + 1);
        prop_assert_eq!(s.fresh_allocs, s.high_water);
    }
}
