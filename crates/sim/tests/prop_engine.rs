//! Property tests for the event engine: randomized schedule / cancel /
//! step interleavings checked against a brute-force reference model.
//!
//! The reference keeps every event in a flat vector and fires the
//! minimum `(time, insertion order)` alive entry by linear scan — the
//! obviously-correct O(n²) semantics the slab queue, seq-generation
//! cancellation and lazy heap deletion must reproduce exactly: same fire
//! order, same cancel return values, same executed count, same clock.

use std::cell::RefCell;
use std::rc::Rc;

use proptest::prelude::*;

use pegasus_sim::{EventId, Simulator};

/// One event in the reference model.
#[derive(Clone, Copy)]
struct ModelEvent {
    time: u64,
    scheduled: bool,
    fired: bool,
}

#[derive(Default)]
struct Model {
    events: Vec<ModelEvent>,
}

impl Model {
    fn schedule(&mut self, time: u64) -> usize {
        self.events.push(ModelEvent {
            time,
            scheduled: true,
            fired: false,
        });
        self.events.len() - 1
    }

    /// Cancels event `i`; returns what `Simulator::cancel` must return.
    fn cancel(&mut self, i: usize) -> bool {
        let e = &mut self.events[i];
        let was_pending = e.scheduled && !e.fired;
        e.scheduled = false;
        was_pending
    }

    /// Index of the next event to fire: minimum (time, insertion order)
    /// among pending entries.
    fn next(&self) -> Option<usize> {
        self.events
            .iter()
            .enumerate()
            .filter(|(_, e)| e.scheduled && !e.fired)
            .min_by_key(|(i, e)| (e.time, *i))
            .map(|(i, _)| i)
    }

    /// Fires the next pending event (if any); returns its index.
    fn step(&mut self) -> Option<usize> {
        let i = self.next()?;
        self.events[i].fired = true;
        Some(i)
    }
}

/// Interprets `(op, arg)` pairs against both implementations and checks
/// every observable along the way. When `handler_cancels` is set, each
/// fired event also cancels a pseudo-randomly chosen earlier event from
/// inside its handler — the reentrant case.
fn check_program(ops: &[(u8, u64)], handler_cancels: bool) -> Result<(), TestCaseError> {
    let mut sim = Simulator::new();
    let mut model = Model::default();
    let mut ids: Vec<EventId> = Vec::new();
    // Shared with handlers: the fire log and the id registry for
    // inside-handler cancellation.
    let fired: Rc<RefCell<Vec<usize>>> = Rc::new(RefCell::new(Vec::new()));
    let registry: Rc<RefCell<Vec<EventId>>> = Rc::new(RefCell::new(Vec::new()));
    let mut model_fired: Vec<usize> = Vec::new();
    // Victim choices made by handlers, replayed into the model after the
    // engine (engine is the source of the choice; the model must agree
    // on *effects*, so victims are a pure function of the event index).
    let victim_of = |idx: usize| -> Option<usize> {
        if !handler_cancels || idx == 0 {
            return None;
        }
        Some((idx * 2_654_435_761) % idx)
    };

    let model_step = |model: &mut Model, model_fired: &mut Vec<usize>| -> Option<usize> {
        let i = model.step()?;
        model_fired.push(i);
        if let Some(v) = victim_of(i) {
            model.cancel(v);
        }
        Some(i)
    };

    for &(op, arg) in ops {
        match op % 4 {
            0 => {
                // Schedule a no-op (but logging, possibly cancelling)
                // event a short distance into the future.
                let t = sim.now() + arg % 64;
                let idx = model.schedule(t);
                let fired = fired.clone();
                let reg = registry.clone();
                let victim = victim_of(idx);
                let id = sim.schedule_at(t, move |sim| {
                    fired.borrow_mut().push(idx);
                    if let Some(v) = victim {
                        // Effect must match the model's replay; the return
                        // value is checked against first principles there.
                        let victim_id = reg.borrow()[v];
                        sim.cancel(victim_id);
                    }
                });
                ids.push(id);
                registry.borrow_mut().push(id);
            }
            1 => {
                // Cancel an arbitrary already-issued id (possibly fired,
                // possibly already cancelled).
                if !ids.is_empty() {
                    let i = (arg as usize) % ids.len();
                    let expect = model.cancel(i);
                    let got = sim.cancel(ids[i]);
                    prop_assert_eq!(got, expect, "cancel({}) disagreed", i);
                }
            }
            2 => {
                // Single step.
                let expect = model_step(&mut model, &mut model_fired);
                let stepped = sim.step();
                prop_assert_eq!(stepped, expect.is_some(), "step() emptiness disagreed");
            }
            _ => {
                // Bounded drain.
                let deadline = sim.now() + arg % 128;
                while model
                    .next()
                    .is_some_and(|i| model.events[i].time <= deadline)
                {
                    model_step(&mut model, &mut model_fired);
                }
                sim.run_until(deadline);
            }
        }
        prop_assert_eq!(
            &*fired.borrow(),
            &model_fired,
            "fire order diverged mid-program"
        );
    }

    // Drain both to the end.
    while model_step(&mut model, &mut model_fired).is_some() {}
    sim.run();
    prop_assert_eq!(&*fired.borrow(), &model_fired, "final fire order diverged");
    prop_assert_eq!(sim.events_executed(), model_fired.len() as u64);
    if let (Some(&last), Some(&mlast)) = (fired.borrow().last(), model_fired.last()) {
        prop_assert_eq!(last, mlast);
        prop_assert_eq!(
            sim.now(),
            model.events[mlast].time.max(sim.now()),
            "clock must sit at (or past, via run_until) the last fired event"
        );
    }
    // Every id must now refuse cancellation: fired or cancelled.
    for (i, id) in ids.iter().enumerate() {
        prop_assert!(!sim.cancel(*id), "id {} cancellable after full drain", i);
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Random schedule/cancel/step/run_until interleavings behave exactly
    /// like the brute-force model (cancel-after-fire and double-cancel
    /// both return false, FIFO tie-break by scheduling order, clock
    /// monotonicity).
    #[test]
    fn engine_matches_reference_model(
        ops in proptest::collection::vec((0u8..4, 0u64..256), 1..160)
    ) {
        check_program(&ops, false)?;
    }

    /// The same program shapes, but every fired handler cancels a
    /// pseudo-random earlier event from inside the engine's dispatch
    /// loop — cancellation must stay exact under reentrancy.
    #[test]
    fn engine_matches_reference_model_with_handler_cancels(
        ops in proptest::collection::vec((0u8..4, 0u64..256), 1..160)
    ) {
        check_program(&ops, true)?;
    }
}
