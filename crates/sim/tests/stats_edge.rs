//! Edge-case coverage for the measurement primitives every scenario
//! report is built from: histogram merging at the empty/single-sample
//! extremes, the jitter view at bucket boundaries, and percentile
//! behaviour at the saturation points (p = 0, p = 100, `u64::MAX`
//! samples). The golden-report gate depends on all of this being exact.

use pegasus_sim::stats::{Histogram, Summary};

fn hist(samples: &[u64]) -> Histogram {
    let mut h = Histogram::new();
    for &v in samples {
        h.record(v);
    }
    h
}

// ---- Summary via merge: empty and single-sample histograms. ----

#[test]
fn merge_two_empty_histograms_summarizes_to_default() {
    let mut a = Histogram::new();
    let b = Histogram::new();
    a.merge(&b);
    assert!(a.is_empty());
    assert_eq!(a.summarize(), Summary::default());
}

#[test]
fn merge_empty_into_populated_is_identity() {
    let mut a = hist(&[3, 1, 2]);
    let before = a.clone().summarize();
    a.merge(&Histogram::new());
    assert_eq!(a.summarize(), before);
}

#[test]
fn merge_populated_into_empty_adopts_the_samples() {
    let mut a = Histogram::new();
    a.merge(&hist(&[5, 9]));
    let s = a.summarize();
    assert_eq!((s.n, s.min, s.max), (2, 5, 9));
    assert_eq!(s.mean, 7.0);
}

#[test]
fn merge_single_sample_histograms() {
    // Two one-sample distributions: every percentile of the merge is
    // one of the two samples, the summary is exact.
    let mut a = hist(&[10]);
    a.merge(&hist(&[20]));
    let s = a.summarize();
    assert_eq!(s.n, 2);
    assert_eq!(s.min, 10);
    assert_eq!(s.p50, 10, "nearest-rank median of two is the lower");
    assert_eq!(s.p90, 20);
    assert_eq!(s.p99, 20);
    assert_eq!(s.max, 20);
    assert_eq!(s.mean, 15.0);
}

#[test]
fn single_sample_summary_is_that_sample_everywhere() {
    let s = hist(&[42]).summarize();
    assert_eq!(
        s,
        Summary {
            n: 1,
            min: 42,
            p50: 42,
            p90: 42,
            p99: 42,
            max: 42,
            mean: 42.0,
        }
    );
}

#[test]
fn merge_is_order_insensitive_for_summaries() {
    let (x, y) = (hist(&[1, 100, 7]), hist(&[3, 3, 50]));
    let mut xy = x.clone();
    xy.merge(&y);
    let mut yx = y.clone();
    yx.merge(&x);
    assert_eq!(xy.summarize(), yx.summarize());
}

#[test]
fn merge_after_percentile_resorts() {
    // A percentile call sorts and caches; a merge afterwards must
    // invalidate that cache.
    let mut a = hist(&[10, 30]);
    assert_eq!(a.percentile(50.0), Some(10));
    a.merge(&hist(&[1]));
    assert_eq!(a.percentile(50.0), Some(10));
    assert_eq!(a.min(), Some(1));
    assert_eq!(a.percentile(100.0), Some(30));
}

// ---- jitter_histogram at bucket boundaries. ----

#[test]
fn jitter_of_empty_histogram_is_empty() {
    let j = Histogram::new().jitter_histogram();
    assert!(j.is_empty());
    assert_eq!(j.clone().summarize(), Summary::default());
}

#[test]
fn jitter_of_single_sample_is_exactly_zero() {
    let mut j = hist(&[123_456]).jitter_histogram();
    assert_eq!(j.min(), Some(0));
    assert_eq!(j.max(), Some(0));
    assert_eq!(j.percentile(100.0), Some(0));
}

#[test]
fn jitter_of_identical_samples_is_all_zero() {
    // Every sample sits exactly on the floor: the boundary bucket.
    let j = hist(&[777, 777, 777, 777]).jitter_histogram();
    assert_eq!(j.count(), 4);
    assert_eq!(j.max(), Some(0));
    assert_eq!(j.mean(), Some(0.0));
}

#[test]
fn jitter_boundary_values_floor_and_ceiling() {
    // Floor sample maps to 0, ceiling to max - min, interior exact.
    let mut j = hist(&[100, 101, 150]).jitter_histogram();
    assert_eq!(j.min(), Some(0));
    assert_eq!(j.max(), Some(50));
    assert_eq!(j.percentile(50.0), Some(1));
}

#[test]
fn jitter_at_u64_extremes_does_not_overflow() {
    // min = 0 keeps v - base = v even for u64::MAX.
    let j = hist(&[0, u64::MAX]).jitter_histogram();
    assert_eq!(j.min(), Some(0));
    assert_eq!(j.max(), Some(u64::MAX));
    // And with a nonzero floor the subtraction stays in range.
    let mut j2 = hist(&[u64::MAX - 5, u64::MAX]).jitter_histogram();
    assert_eq!(j2.max(), Some(5));
    assert_eq!(j2.percentile(0.0), Some(0));
}

#[test]
fn jitter_histogram_preserves_sample_count() {
    let h = hist(&[4, 8, 15, 16, 23, 42]);
    assert_eq!(h.jitter_histogram().count(), h.count());
}

// ---- Percentile behaviour at saturation. ----

#[test]
fn percentile_zero_clamps_to_minimum() {
    let mut h = hist(&[10, 20, 30]);
    // Nearest-rank at p=0 computes rank 0; the clamp must land on the
    // smallest sample, not panic or underflow.
    assert_eq!(h.percentile(0.0), Some(10));
}

#[test]
fn percentile_hundred_is_the_maximum() {
    let mut h = hist(&[10, 20, 30]);
    assert_eq!(h.percentile(100.0), Some(30));
    assert_eq!(h.percentile(100.0), h.max());
}

#[test]
fn percentile_above_hundred_saturates_at_maximum() {
    let mut h = hist(&[10, 20, 30]);
    assert_eq!(h.percentile(150.0), Some(30), "rank clamps to n");
}

#[test]
fn percentiles_with_saturated_samples() {
    // All samples at the type's ceiling: every percentile is the
    // ceiling and the summary holds it exactly.
    let mut h = hist(&[u64::MAX, u64::MAX, u64::MAX]);
    assert_eq!(h.percentile(50.0), Some(u64::MAX));
    let s = h.summarize();
    assert_eq!(s.min, u64::MAX);
    assert_eq!(s.p99, u64::MAX);
    assert_eq!(s.max, u64::MAX);
}

#[test]
fn percentile_grid_never_decreases() {
    // Percentiles are monotone in p — including the saturation ends.
    let mut h = hist(&[9, 1, 5, 3, 7, 2, 8, 4, 6, 0]);
    let mut last = 0;
    for p in 0..=100 {
        let v = h.percentile(p as f64).unwrap();
        assert!(v >= last, "p{p}: {v} < {last}");
        last = v;
    }
    assert_eq!(last, 9);
}
