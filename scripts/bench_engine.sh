#!/usr/bin/env sh
# Runs the e18 engine-throughput macro-bench and writes BENCH_engine.json
# (events/sec, cells/sec, cancels/sec, plus the pre-rearchitecture
# baseline and the speedup ratios).
#
# Usage:
#   scripts/bench_engine.sh           # full run, updates BENCH_engine.json
#   scripts/bench_engine.sh --smoke   # short CI run (scale 20), writes
#                                     # BENCH_engine.smoke.json instead so
#                                     # the committed numbers stay full-scale
set -eu
cd "$(dirname "$0")/.."

SCALE=1
OUT=BENCH_engine.json
if [ "${1:-}" = "--smoke" ]; then
    SCALE=20
    OUT=BENCH_engine.smoke.json
fi

# cargo runs bench binaries with the package directory as cwd; hand the
# bench an absolute path so the json lands at the repo root.
#
# The bench's exit status is checked explicitly (and the output file
# verified) so a crashing bench binary can never report success — the CI
# bench-floor guard depends on this propagating.
rm -f "$OUT"
if ! cargo bench --bench e18_engine_throughput -- --scale "$SCALE" --json "$PWD/$OUT"; then
    echo "bench_engine.sh: bench binary failed (scale $SCALE)" >&2
    exit 1
fi
if [ ! -s "$OUT" ]; then
    echo "bench_engine.sh: bench produced no $OUT" >&2
    exit 1
fi
echo "--- $OUT"
cat "$OUT"
