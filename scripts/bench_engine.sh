#!/usr/bin/env sh
# Runs the e18 engine-throughput macro-bench (BENCH_engine.json), the
# e19 zero-copy frame-path bench (BENCH_frame_path.json), the e20
# sharded-executor scaling bench (BENCH_shards.json), and the e21
# tiered-cache bench (BENCH_cache.json): events/sec, cells/sec,
# cancels/sec, copy-vs-view frames/sec, per-shard-count lanes
# (shards1/shards2/shards4) over metropolis-100k, and cached-vs-uncached
# disk-time lanes over a Zipf alpha sweep.
#
# Usage:
#   scripts/bench_engine.sh           # full run, updates BENCH_*.json
#   scripts/bench_engine.sh --smoke   # short CI run (scale 20), writes
#                                     # BENCH_*.smoke.json instead so
#                                     # the committed numbers stay full-scale
set -eu
cd "$(dirname "$0")/.."

SCALE=1
OUT=BENCH_engine.json
FRAME_OUT=BENCH_frame_path.json
SHARD_OUT=BENCH_shards.json
CACHE_OUT=BENCH_cache.json
if [ "${1:-}" = "--smoke" ]; then
    SCALE=20
    OUT=BENCH_engine.smoke.json
    FRAME_OUT=BENCH_frame_path.smoke.json
    SHARD_OUT=BENCH_shards.smoke.json
    CACHE_OUT=BENCH_cache.smoke.json
fi

# cargo runs bench binaries with the package directory as cwd; hand the
# bench an absolute path so the json lands at the repo root.
#
# The bench's exit status is checked explicitly (and the output file
# verified) so a crashing bench binary can never report success — the CI
# bench-floor guard depends on this propagating.
rm -f "$OUT"
if ! cargo bench --bench e18_engine_throughput -- --scale "$SCALE" --json "$PWD/$OUT"; then
    echo "bench_engine.sh: bench binary failed (scale $SCALE)" >&2
    exit 1
fi
if [ ! -s "$OUT" ]; then
    echo "bench_engine.sh: bench produced no $OUT" >&2
    exit 1
fi
echo "--- $OUT"
cat "$OUT"

rm -f "$FRAME_OUT"
if ! cargo bench --bench e19_frame_path -- --scale "$SCALE" --json "$PWD/$FRAME_OUT"; then
    echo "bench_engine.sh: e19 bench binary failed (scale $SCALE)" >&2
    exit 1
fi
if [ ! -s "$FRAME_OUT" ]; then
    echo "bench_engine.sh: bench produced no $FRAME_OUT" >&2
    exit 1
fi
echo "--- $FRAME_OUT"
cat "$FRAME_OUT"

rm -f "$SHARD_OUT"
if ! cargo bench --bench e20_shard_scaling -- --scale "$SCALE" --json "$PWD/$SHARD_OUT"; then
    echo "bench_engine.sh: e20 bench binary failed (scale $SCALE)" >&2
    exit 1
fi
if [ ! -s "$SHARD_OUT" ]; then
    echo "bench_engine.sh: bench produced no $SHARD_OUT" >&2
    exit 1
fi

# The e22 control-plane lanes share BENCH_shards.json with the e20
# data-plane lanes (its keys are `control_`-prefixed so the guard's
# lookups cannot collide); the bench writes its own object and the
# script appends it after e20's.
rm -f "$SHARD_OUT.ctrl"
if ! cargo bench --bench e22_control_plane_scaling -- --scale "$SCALE" --json "$PWD/$SHARD_OUT.ctrl"; then
    echo "bench_engine.sh: e22 bench binary failed (scale $SCALE)" >&2
    exit 1
fi
if [ ! -s "$SHARD_OUT.ctrl" ]; then
    echo "bench_engine.sh: bench produced no $SHARD_OUT.ctrl" >&2
    exit 1
fi
cat "$SHARD_OUT.ctrl" >> "$SHARD_OUT"
rm -f "$SHARD_OUT.ctrl"
echo "--- $SHARD_OUT"
cat "$SHARD_OUT"

# The e21 lanes are virtual-time disk clocks, not wall-clock rates, so
# the same workload runs at full scale in smoke mode too — the numbers
# are hardware-independent and the smoke file differs only in name.
rm -f "$CACHE_OUT"
if ! cargo bench --bench e21_cache_tiers -- --json "$PWD/$CACHE_OUT"; then
    echo "bench_engine.sh: e21 bench binary failed" >&2
    exit 1
fi
if [ ! -s "$CACHE_OUT" ]; then
    echo "bench_engine.sh: bench produced no $CACHE_OUT" >&2
    exit 1
fi
echo "--- $CACHE_OUT"
cat "$CACHE_OUT"
