#!/usr/bin/env sh
# The scenario gauntlet: runs scenario presets, writes their JSON
# reports to scenario-reports/, and enforces the QoS gates CI relies on.
#
# Usage:
#   scripts/run_scenarios.sh --smoke   # CI: smoke + metropolis-1k @5%,
#                                      # zero deadline misses required,
#                                      # determinism checked byte-for-byte
#   scripts/run_scenarios.sh --full    # every preset at full scale
#                                      # (fault presets may miss by design;
#                                      # only completion is enforced)
set -eu
cd "$(dirname "$0")/.."

MODE="${1:---smoke}"
OUTDIR=scenario-reports
mkdir -p "$OUTDIR"

cargo build --release --bin pegasus-scenario
BIN=target/release/pegasus-scenario

misses_of() {
    awk '{
        line = $0
        sub(/^.*"deadline_misses":/, "", line)
        sub(/[,}].*$/, "", line)
        print line
        exit
    }' "$1"
}

require_clean() {
    # require_clean NAME FILE — the preset must report zero misses.
    MISSES=$(misses_of "$2")
    if [ -z "$MISSES" ]; then
        echo "run_scenarios.sh: no deadline_misses in $2" >&2
        exit 1
    fi
    if [ "$MISSES" -ne 0 ]; then
        echo "run_scenarios.sh: $1 reported $MISSES deadline misses (want 0)" >&2
        exit 1
    fi
    echo "run_scenarios.sh: $1 clean (0 deadline misses)"
}

if [ "$MODE" = "--smoke" ]; then
    "$BIN" run smoke --seed 7 --quiet --out "$OUTDIR/smoke.json"
    require_clean smoke "$OUTDIR/smoke.json"

    # Determinism gate: the same spec and seed must serialize
    # byte-identically.
    "$BIN" run smoke --seed 7 --quiet --out "$OUTDIR/smoke.rerun.json"
    if ! cmp -s "$OUTDIR/smoke.json" "$OUTDIR/smoke.rerun.json"; then
        echo "run_scenarios.sh: smoke report is not deterministic" >&2
        exit 1
    fi
    echo "run_scenarios.sh: smoke deterministic"

    # The city, CI-sized: 5% of the sessions on the full 16-switch mesh.
    "$BIN" run metropolis-1k --seed 7 --scale 0.05 --quiet \
        --out "$OUTDIR/metropolis-smoke.json"
    require_clean "metropolis-1k@5%" "$OUTDIR/metropolis-smoke.json"
elif [ "$MODE" = "--full" ]; then
    for preset in smoke videophone-wall vod-rack tv-studio nemesis-storm metropolis-1k; do
        "$BIN" run "$preset" --out "$OUTDIR/$preset.json"
    done
    # The clean presets must stay clean even at full scale.
    for preset in smoke videophone-wall vod-rack tv-studio metropolis-1k; do
        require_clean "$preset" "$OUTDIR/$preset.json"
    done
else
    echo "usage: scripts/run_scenarios.sh [--smoke|--full]" >&2
    exit 2
fi

echo "run_scenarios.sh: all gates passed"
