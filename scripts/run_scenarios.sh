#!/usr/bin/env sh
# The scenario gauntlet: runs scenario presets, writes their JSON
# reports to scenario-reports/, and enforces the QoS gates CI relies on.
#
# Usage:
#   scripts/run_scenarios.sh --smoke   # CI: smoke + metropolis-1k @5%
#                                      # + the overload presets
#                                      # + the backpressure presets;
#                                      # zero deadline misses required
#                                      # (for admitted sessions),
#                                      # overload must reject some
#                                      # sessions deterministically,
#                                      # zero admitted overflow drops,
#                                      # sustained-3x must renegotiate
#                                      # down AND back up,
#                                      # determinism checked byte-for-byte,
#                                      # canonical reports byte-identical
#                                      # at --shards 1/2/4 — including
#                                      # the control-plane presets
#                                      # (sustained-3x, storm-backpressure,
#                                      # nemesis-storm)
#   scripts/run_scenarios.sh --full    # every preset at full scale
#                                      # (fault presets may miss by design;
#                                      # only completion is enforced)
set -eu
cd "$(dirname "$0")/.."

MODE="${1:---smoke}"
OUTDIR=scenario-reports
mkdir -p "$OUTDIR"

cargo build --release --bin pegasus-scenario
BIN=target/release/pegasus-scenario

field_of() {
    # field_of FILE KEY — first integer value of "KEY": in the report.
    awk -v key="\"$2\":" '{
        line = $0
        if (index(line, key) == 0) next
        sub(".*" key, "", line)
        sub(/[,}].*$/, "", line)
        print line
        exit
    }' "$1"
}

require_clean() {
    # require_clean NAME FILE — the preset must report zero misses.
    # Rejected sessions are never wired, so deadline_misses is by
    # construction a claim about admitted sessions only.
    MISSES=$(field_of "$2" deadline_misses)
    if [ -z "$MISSES" ]; then
        echo "run_scenarios.sh: no deadline_misses in $2" >&2
        exit 1
    fi
    if [ "$MISSES" -ne 0 ]; then
        echo "run_scenarios.sh: $1 reported $MISSES deadline misses (want 0)" >&2
        exit 1
    fi
    echo "run_scenarios.sh: $1 clean (0 deadline misses)"
}

require_rejections() {
    # require_rejections NAME FILE — an overload preset must turn
    # sessions away; zero rejections means admission control is not
    # actually gating anything.
    REJECTED=$(field_of "$2" rejected)
    if [ -z "$REJECTED" ] || [ "$REJECTED" -eq 0 ]; then
        echo "run_scenarios.sh: $1 rejected '${REJECTED:-none}' sessions (want > 0)" >&2
        exit 1
    fi
    echo "run_scenarios.sh: $1 rejected $REJECTED sessions under overload"
}

require_no_overflow() {
    # require_no_overflow NAME FILE — no admitted session's cell may be
    # lost to queue overflow: admission control bounds the average rates
    # and, where enabled, credit backpressure bounds the queues by
    # construction. An overflow drop on an admitted circuit is silent
    # degradation and fails the gate.
    OVER=$(field_of "$2" admitted_dropped_overflow)
    if [ -z "$OVER" ]; then
        echo "run_scenarios.sh: no admitted_dropped_overflow in $2" >&2
        exit 1
    fi
    if [ "$OVER" -ne 0 ]; then
        echo "run_scenarios.sh: $1 dropped $OVER admitted cells to overflow (want 0)" >&2
        exit 1
    fi
    echo "run_scenarios.sh: $1 zero admitted overflow drops"
}

require_renegotiation() {
    # require_renegotiation NAME FILE — the congestion loop must have
    # both degraded under pressure and restored when it cleared;
    # otherwise the backpressure preset is not exercising the loop.
    DOWN=$(field_of "$2" renegotiations_down)
    UP=$(field_of "$2" renegotiations_up)
    if [ -z "$DOWN" ] || [ "$DOWN" -eq 0 ]; then
        echo "run_scenarios.sh: $1 renegotiated nothing down (want > 0)" >&2
        exit 1
    fi
    if [ -z "$UP" ] || [ "$UP" -eq 0 ]; then
        echo "run_scenarios.sh: $1 restored nothing after the pressure cleared (want > 0)" >&2
        exit 1
    fi
    echo "run_scenarios.sh: $1 renegotiated $DOWN down, $UP up"
}

require_shard_invariance() {
    # require_shard_invariance NAME PRESET ARGS... — the canonical
    # report (schema minus the per-shard execution block) must be
    # byte-identical at --shards 1, 2 and 4.
    NAME=$1
    shift
    "$BIN" run "$@" --shards 1 --canonical --quiet \
        --out "$OUTDIR/$NAME.shards1.json"
    for n in 2 4; do
        "$BIN" run "$@" --shards "$n" --canonical --quiet \
            --out "$OUTDIR/$NAME.shards$n.json"
        if ! cmp -s "$OUTDIR/$NAME.shards1.json" "$OUTDIR/$NAME.shards$n.json"; then
            echo "run_scenarios.sh: $NAME canonical report differs at --shards $n" >&2
            exit 1
        fi
    done
    echo "run_scenarios.sh: $NAME byte-identical at --shards 1, 2 and 4"
}

require_deterministic() {
    # require_deterministic NAME PRESET ARGS... — rerun and byte-compare.
    NAME=$1
    shift
    "$BIN" run "$@" --quiet --out "$OUTDIR/$NAME.rerun.json"
    if ! cmp -s "$OUTDIR/$NAME.json" "$OUTDIR/$NAME.rerun.json"; then
        echo "run_scenarios.sh: $NAME report is not deterministic" >&2
        exit 1
    fi
    echo "run_scenarios.sh: $NAME deterministic"
}

if [ "$MODE" = "--smoke" ]; then
    "$BIN" run smoke --seed 7 --quiet --out "$OUTDIR/smoke.json"
    require_clean smoke "$OUTDIR/smoke.json"

    # Determinism gate: the same spec and seed must serialize
    # byte-identically.
    require_deterministic smoke smoke --seed 7

    # Cross-shard determinism gate: the canonical report (schema minus
    # the per-shard execution block) must be byte-identical whether the
    # city runs on one thread or across region shards. smoke's
    # two-switch star clamps --shards 4 to 2 real shards; the 16-switch
    # metropolis mesh runs 4 genuine ones.
    require_shard_invariance smoke smoke --seed 7
    require_shard_invariance metropolis-smoke metropolis-1k --seed 7 --scale 0.05

    # The city, CI-sized: 5% of the sessions on the full 16-switch mesh.
    "$BIN" run metropolis-1k --seed 7 --scale 0.05 --quiet \
        --out "$OUTDIR/metropolis-smoke.json"
    require_clean "metropolis-1k@5%" "$OUTDIR/metropolis-smoke.json"

    # The overload presets: admitted sessions stay clean, the surplus is
    # rejected — deterministically.
    for preset in overload-2x flash-crowd; do
        "$BIN" run "$preset" --quiet --out "$OUTDIR/$preset.json"
        require_clean "$preset (admitted sessions)" "$OUTDIR/$preset.json"
        require_rejections "$preset" "$OUTDIR/$preset.json"
        require_no_overflow "$preset" "$OUTDIR/$preset.json"
        require_deterministic "$preset" "$preset"
    done

    # Sustained 3x best-effort overload with credit backpressure:
    # bounded queues, zero overflow, zero misses, and the congestion
    # loop must renegotiate down under the blast and back up after it.
    "$BIN" run sustained-3x --quiet --out "$OUTDIR/sustained-3x.json"
    require_clean "sustained-3x (admitted sessions)" "$OUTDIR/sustained-3x.json"
    require_no_overflow sustained-3x "$OUTDIR/sustained-3x.json"
    require_renegotiation sustained-3x "$OUTDIR/sustained-3x.json"
    require_deterministic sustained-3x sustained-3x

    # The sharded control plane's headline gate: the backpressure preset
    # runs unclamped across region shards — cut-crossing credit returns,
    # epoch-merged congestion signals and all — and the canonical report
    # stays byte-identical to the single-shard run.
    require_shard_invariance sustained-3x sustained-3x

    # The VoD city with the tiered content cache: zero misses, a
    # byte-identical rerun, and the §5 cache claims measured, not
    # asserted — the flash-crowd title must be served from the hot
    # tier's shared buffers (>= 900 per mille) and the tiers must have
    # absorbed real disk I/O.
    "$BIN" run vod-city --quiet --out "$OUTDIR/vod-city.json"
    require_clean vod-city "$OUTDIR/vod-city.json"
    require_deterministic vod-city vod-city
    CROWD_HOT=$(field_of "$OUTDIR/vod-city.json" crowded_title_hot_milli)
    if [ -z "$CROWD_HOT" ] || [ "$CROWD_HOT" -lt 900 ]; then
        echo "run_scenarios.sh: vod-city crowd hot-tier ratio ${CROWD_HOT:-missing}/1000 (want >= 900)" >&2
        exit 1
    fi
    echo "run_scenarios.sh: vod-city crowd served $CROWD_HOT/1000 from the hot tier"
    SAVED=$(field_of "$OUTDIR/vod-city.json" disk_io_saved_cells)
    if [ -z "$SAVED" ] || [ "$SAVED" -eq 0 ]; then
        echo "run_scenarios.sh: vod-city saved ${SAVED:-no} disk cells (want > 0)" >&2
        exit 1
    fi
    echo "run_scenarios.sh: vod-city tiers absorbed $SAVED cells of disk I/O"

    # The nemesis storm under backpressure: faults strand circuits and
    # shrink queues, so drops happen — but they are *attributed*, the
    # loop still degrades under pressure, and the report is byte-stable.
    "$BIN" run storm-backpressure --scale 0.5 --quiet \
        --out "$OUTDIR/storm-backpressure.json"
    DOWN=$(field_of "$OUTDIR/storm-backpressure.json" renegotiations_down)
    if [ -z "$DOWN" ] || [ "$DOWN" -eq 0 ]; then
        echo "run_scenarios.sh: storm-backpressure never degraded under the storm" >&2
        exit 1
    fi
    echo "run_scenarios.sh: storm-backpressure renegotiated $DOWN down under the storm"
    require_deterministic storm-backpressure storm-backpressure --scale 0.5

    # Same cross-shard gate with faults in play: switch deaths repaired
    # by every shard's replicated signalling at the same epoch boundary.
    require_shard_invariance storm-backpressure storm-backpressure --scale 0.5
    require_shard_invariance nemesis-storm nemesis-storm
elif [ "$MODE" = "--full" ]; then
    for preset in smoke videophone-wall vod-rack tv-studio nemesis-storm \
                  metropolis-1k overload-2x flash-crowd sustained-3x \
                  storm-backpressure vod-city; do
        "$BIN" run "$preset" --out "$OUTDIR/$preset.json"
    done
    # The 100k-session city runs under the sharded executor at full
    # scale; completion and the in-binary canonical cross-checks are
    # the gate here (its QoS numbers live in BENCH_shards.json lanes).
    "$BIN" run metropolis-100k --shards 4 --out "$OUTDIR/metropolis-100k.json"
    # The clean presets must stay clean even at full scale — including
    # the overload trio, whose *admitted* sessions must never miss.
    for preset in smoke videophone-wall vod-rack tv-studio metropolis-1k \
                  overload-2x flash-crowd sustained-3x vod-city; do
        require_clean "$preset" "$OUTDIR/$preset.json"
    done
    for preset in overload-2x flash-crowd; do
        require_rejections "$preset" "$OUTDIR/$preset.json"
    done
    for preset in overload-2x flash-crowd sustained-3x; do
        require_no_overflow "$preset" "$OUTDIR/$preset.json"
    done
    require_renegotiation sustained-3x "$OUTDIR/sustained-3x.json"
else
    echo "usage: scripts/run_scenarios.sh [--smoke|--full]" >&2
    exit 2
fi

echo "run_scenarios.sh: all gates passed"
