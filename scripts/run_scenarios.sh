#!/usr/bin/env sh
# The scenario gauntlet: runs scenario presets, writes their JSON
# reports to scenario-reports/, and enforces the QoS gates CI relies on.
#
# Usage:
#   scripts/run_scenarios.sh --smoke   # CI: smoke + metropolis-1k @5%
#                                      # + the overload presets;
#                                      # zero deadline misses required
#                                      # (for admitted sessions),
#                                      # overload must reject some
#                                      # sessions deterministically,
#                                      # determinism checked byte-for-byte
#   scripts/run_scenarios.sh --full    # every preset at full scale
#                                      # (fault presets may miss by design;
#                                      # only completion is enforced)
set -eu
cd "$(dirname "$0")/.."

MODE="${1:---smoke}"
OUTDIR=scenario-reports
mkdir -p "$OUTDIR"

cargo build --release --bin pegasus-scenario
BIN=target/release/pegasus-scenario

field_of() {
    # field_of FILE KEY — first integer value of "KEY": in the report.
    awk -v key="\"$2\":" '{
        line = $0
        if (index(line, key) == 0) next
        sub(".*" key, "", line)
        sub(/[,}].*$/, "", line)
        print line
        exit
    }' "$1"
}

require_clean() {
    # require_clean NAME FILE — the preset must report zero misses.
    # Rejected sessions are never wired, so deadline_misses is by
    # construction a claim about admitted sessions only.
    MISSES=$(field_of "$2" deadline_misses)
    if [ -z "$MISSES" ]; then
        echo "run_scenarios.sh: no deadline_misses in $2" >&2
        exit 1
    fi
    if [ "$MISSES" -ne 0 ]; then
        echo "run_scenarios.sh: $1 reported $MISSES deadline misses (want 0)" >&2
        exit 1
    fi
    echo "run_scenarios.sh: $1 clean (0 deadline misses)"
}

require_rejections() {
    # require_rejections NAME FILE — an overload preset must turn
    # sessions away; zero rejections means admission control is not
    # actually gating anything.
    REJECTED=$(field_of "$2" rejected)
    if [ -z "$REJECTED" ] || [ "$REJECTED" -eq 0 ]; then
        echo "run_scenarios.sh: $1 rejected '${REJECTED:-none}' sessions (want > 0)" >&2
        exit 1
    fi
    echo "run_scenarios.sh: $1 rejected $REJECTED sessions under overload"
}

require_deterministic() {
    # require_deterministic NAME PRESET ARGS... — rerun and byte-compare.
    NAME=$1
    shift
    "$BIN" run "$@" --quiet --out "$OUTDIR/$NAME.rerun.json"
    if ! cmp -s "$OUTDIR/$NAME.json" "$OUTDIR/$NAME.rerun.json"; then
        echo "run_scenarios.sh: $NAME report is not deterministic" >&2
        exit 1
    fi
    echo "run_scenarios.sh: $NAME deterministic"
}

if [ "$MODE" = "--smoke" ]; then
    "$BIN" run smoke --seed 7 --quiet --out "$OUTDIR/smoke.json"
    require_clean smoke "$OUTDIR/smoke.json"

    # Determinism gate: the same spec and seed must serialize
    # byte-identically.
    require_deterministic smoke smoke --seed 7

    # The city, CI-sized: 5% of the sessions on the full 16-switch mesh.
    "$BIN" run metropolis-1k --seed 7 --scale 0.05 --quiet \
        --out "$OUTDIR/metropolis-smoke.json"
    require_clean "metropolis-1k@5%" "$OUTDIR/metropolis-smoke.json"

    # The overload presets: admitted sessions stay clean, the surplus is
    # rejected — deterministically.
    for preset in overload-2x flash-crowd; do
        "$BIN" run "$preset" --quiet --out "$OUTDIR/$preset.json"
        require_clean "$preset (admitted sessions)" "$OUTDIR/$preset.json"
        require_rejections "$preset" "$OUTDIR/$preset.json"
        require_deterministic "$preset" "$preset"
    done
elif [ "$MODE" = "--full" ]; then
    for preset in smoke videophone-wall vod-rack tv-studio nemesis-storm \
                  metropolis-1k overload-2x flash-crowd; do
        "$BIN" run "$preset" --out "$OUTDIR/$preset.json"
    done
    # The clean presets must stay clean even at full scale — including
    # the overload pair, whose *admitted* sessions must never miss.
    for preset in smoke videophone-wall vod-rack tv-studio metropolis-1k \
                  overload-2x flash-crowd; do
        require_clean "$preset" "$OUTDIR/$preset.json"
    done
    for preset in overload-2x flash-crowd; do
        require_rejections "$preset" "$OUTDIR/$preset.json"
    done
else
    echo "usage: scripts/run_scenarios.sh [--smoke|--full]" >&2
    exit 2
fi

echo "run_scenarios.sh: all gates passed"
