#!/usr/bin/env sh
# The engine bench-regression guard: runs the e18 smoke bench and fails
# when events/sec falls more than 30% below the committed floor in
# BENCH_engine.json (the other rates are reported for context only —
# events/sec is the engine's headline number).
#
# Caveat: the floor is an absolute rate recorded on the hardware that
# last ran `scripts/bench_engine.sh` (full mode updates the committed
# file). A runner materially slower than that machine trips the guard
# without a code regression — refresh BENCH_engine.json from the slow
# machine, or pass a wider tolerance.
#
# Usage: scripts/bench_guard.sh [tolerance-percent]   # default 30
set -eu
cd "$(dirname "$0")/.."

TOLERANCE="${1:-30}"

sh scripts/bench_engine.sh --smoke

json_field() {
    # json_field FILE KEY NTH — NTH numeric value of "KEY": N in FILE.
    # The bench emits the key once under "baseline" and once under
    # "current" (in that order); the guard compares current to current.
    awk -v key="\"$2\"" -v nth="$3" '
        $0 ~ key {
            if (++seen == nth) {
                line = $0
                sub(/^.*: */, "", line)
                sub(/[,} ].*$/, "", line)
                print line
                exit
            }
        }' "$1"
}

FLOOR_BASE=$(json_field BENCH_engine.json events_per_sec 2)
SMOKE=$(json_field BENCH_engine.smoke.json events_per_sec 2)
if [ -z "$FLOOR_BASE" ] || [ -z "$SMOKE" ]; then
    echo "bench_guard.sh: could not parse events_per_sec" >&2
    exit 1
fi

FLOOR=$(awk -v b="$FLOOR_BASE" -v t="$TOLERANCE" 'BEGIN { printf "%d", b * (100 - t) / 100 }')
echo "bench_guard: smoke events/sec $SMOKE vs floor $FLOOR (committed $FLOOR_BASE, -$TOLERANCE%)"
if [ "$SMOKE" -lt "$FLOOR" ]; then
    echo "bench_guard: REGRESSION — events/sec $SMOKE below floor $FLOOR" >&2
    exit 1
fi
echo "bench_guard: OK"
