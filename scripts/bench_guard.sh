#!/usr/bin/env sh
# The bench-regression guard: runs the e18/e19/e20 smoke benches and
# fails when events/sec falls more than 30% below the committed floor in
# BENCH_engine.json (the other rates are reported for context only —
# events/sec is the engine's headline number), when the zero-copy
# frame path's copy-vs-view speedup drops below the e19 floor (the
# committed full-scale run shows >=2x; the smoke floor is 1.5x to absorb
# slow CI machines), or when the sharded executor regresses: the
# shards1 lane of BENCH_shards.json has the same -30% floor, and on a
# host with >=4 cores the shards4 lane must hold >=2.5x the shards1
# events/sec (on fewer cores the scaling check is skipped with an
# explicit SKIPPED line and a scaling_gate_skipped marker in the smoke
# JSON — the lanes still run and the canonical-report cross-check
# inside e20 still bites). The e22 control-plane lanes (sustained-3x
# scaled up, backpressure and congestion epochs live, appended to the
# same BENCH_shards.json) carry the same -30% single-shard floor and a
# 1.8x four-shard gate behind the same core-count skip. The e21
# tiered-cache lane must hold a >=2x disk-time reduction at Zipf alpha
# 1.0 (virtual time, no tolerance).
#
# Caveat: the floor is an absolute rate recorded on the hardware that
# last ran `scripts/bench_engine.sh` (full mode updates the committed
# file). A runner materially slower than that machine trips the guard
# without a code regression — refresh BENCH_engine.json from the slow
# machine, or pass a wider tolerance.
#
# Usage: scripts/bench_guard.sh [tolerance-percent]   # default 30
set -eu
cd "$(dirname "$0")/.."

TOLERANCE="${1:-30}"

sh scripts/bench_engine.sh --smoke

json_field() {
    # json_field FILE KEY NTH — NTH numeric value of "KEY": N in FILE.
    # The bench emits the key once under "baseline" and once under
    # "current" (in that order); the guard compares current to current.
    awk -v key="\"$2\"" -v nth="$3" '
        $0 ~ key {
            if (++seen == nth) {
                line = $0
                sub(/^.*: */, "", line)
                sub(/[,} ].*$/, "", line)
                print line
                exit
            }
        }' "$1"
}

# rate_floor KEY LABEL — compare smoke KEY against the committed floor.
rate_floor() {
    BASE=$(json_field BENCH_engine.json "$1" 2)
    SMOKE=$(json_field BENCH_engine.smoke.json "$1" 2)
    if [ -z "$BASE" ] || [ -z "$SMOKE" ]; then
        echo "bench_guard.sh: could not parse $1" >&2
        exit 1
    fi
    FLOOR=$(awk -v b="$BASE" -v t="$TOLERANCE" 'BEGIN { printf "%d", b * (100 - t) / 100 }')
    echo "bench_guard: smoke $2 $SMOKE vs floor $FLOOR (committed $BASE, -$TOLERANCE%)"
    if [ "$SMOKE" -lt "$FLOOR" ]; then
        echo "bench_guard: REGRESSION — $2 $SMOKE below floor $FLOOR" >&2
        exit 1
    fi
}

rate_floor events_per_sec events/sec
rate_floor cells_per_sec cells/sec

# The top-level "frames" speedup of the e19 json ("frames_per_sec" and
# "frames_total" don't match the quoted key, so the first hit is it).
FRAME_SPEEDUP=$(json_field BENCH_frame_path.smoke.json frames 1)
if [ -z "$FRAME_SPEEDUP" ]; then
    echo "bench_guard.sh: could not parse frame-path speedup" >&2
    exit 1
fi
FRAME_OK=$(awk -v s="$FRAME_SPEEDUP" 'BEGIN { print (s >= 1.5) ? 1 : 0 }')
echo "bench_guard: frame-path view/copy speedup ${FRAME_SPEEDUP}x (floor 1.5x smoke, 2x committed)"
if [ "$FRAME_OK" != "1" ]; then
    echo "bench_guard: REGRESSION — zero-copy frame path speedup ${FRAME_SPEEDUP}x below 1.5x" >&2
    exit 1
fi

# Credit accounting on the uncongested hot path must stay within noise
# of the plain view lane ("relative_to_view" is credited/view; the
# committed full-scale run shows ~1.0, the smoke floor absorbs CI jitter).
CREDIT_REL=$(json_field BENCH_frame_path.smoke.json relative_to_view 1)
if [ -z "$CREDIT_REL" ]; then
    echo "bench_guard.sh: could not parse credit-lane ratio" >&2
    exit 1
fi
CREDIT_OK=$(awk -v s="$CREDIT_REL" 'BEGIN { print (s >= 0.85) ? 1 : 0 }')
echo "bench_guard: credited frame path at ${CREDIT_REL}x of the view lane (floor 0.85x)"
if [ "$CREDIT_OK" != "1" ]; then
    echo "bench_guard: REGRESSION — credit accounting costs more than 15% on the hot path" >&2
    exit 1
fi

# Sharded-executor lanes. The lanes appear in shards1/shards2/shards4
# order in both files, so the first events_per_sec hit is the shards1
# lane — the single-shard floor is hardware-comparable the same way the
# e18 floor is. The committed shards1 rate is a *full-scale* run and the
# smoke lane is scale 20, so only like-for-like fields are compared.
SHARD1_BASE=$(json_field BENCH_shards.json events_per_sec 1)
SHARD1_SMOKE=$(json_field BENCH_shards.smoke.json events_per_sec 1)
if [ -z "$SHARD1_BASE" ] || [ -z "$SHARD1_SMOKE" ]; then
    echo "bench_guard.sh: could not parse shards1 events_per_sec" >&2
    exit 1
fi
SHARD_FLOOR=$(awk -v b="$SHARD1_BASE" -v t="$TOLERANCE" 'BEGIN { printf "%d", b * (100 - t) / 100 }')
echo "bench_guard: smoke shards1 $SHARD1_SMOKE vs floor $SHARD_FLOOR (committed $SHARD1_BASE, -$TOLERANCE%)"
if [ "$SHARD1_SMOKE" -lt "$SHARD_FLOOR" ]; then
    echo "bench_guard: REGRESSION — shards1 events/sec $SHARD1_SMOKE below floor $SHARD_FLOOR" >&2
    exit 1
fi

# The scaling gate only means something when there are cores to scale
# onto: a 1-core runner executes all shards on one core and can only
# measure barrier overhead. The skip is never silent: the bench records
# it in the smoke JSON (scaling_gate_skipped) and the guard prints a
# SKIPPED line, so a CI log where the 2.5x gate did not run says so in
# so many words — and a bench that recorded a skip on a >=4-core host
# is itself a failure.
HOST_CORES=$(json_field BENCH_shards.smoke.json host_cores 1)
GATE_SKIPPED=$(json_field BENCH_shards.smoke.json scaling_gate_skipped 1)
if [ -z "$GATE_SKIPPED" ]; then
    echo "bench_guard.sh: no scaling_gate_skipped marker in BENCH_shards.smoke.json" >&2
    exit 1
fi
if [ -n "$HOST_CORES" ] && [ "$HOST_CORES" -ge 4 ]; then
    if [ "$GATE_SKIPPED" -ne 0 ]; then
        echo "bench_guard: BENCH_shards.smoke.json claims the scaling gate was skipped on a $HOST_CORES-core host" >&2
        exit 1
    fi
    SPEEDUP=$(json_field BENCH_shards.smoke.json speedup_4v1 1)
    SCALE_OK=$(awk -v s="$SPEEDUP" 'BEGIN { print (s >= 2.5) ? 1 : 0 }')
    echo "bench_guard: shards4 speedup ${SPEEDUP}x on $HOST_CORES cores (floor 2.5x)"
    if [ "$SCALE_OK" != "1" ]; then
        echo "bench_guard: REGRESSION — shards4 speedup ${SPEEDUP}x below 2.5x on a $HOST_CORES-core host" >&2
        exit 1
    fi
else
    echo "bench_guard: shards4 2.5x scaling gate SKIPPED (host_cores=${HOST_CORES:-?}, needs >=4; marker recorded in BENCH_shards.smoke.json)"
fi

# Control-plane lanes (e22, appended to the same BENCH_shards.json by
# bench_engine.sh). Same shape as the e20 gates: the ctrl_shards1 lane
# holds a -30% rate floor against the committed full-scale run, and on
# a >=4-core host the ctrl_shards4 lane must hold >=1.8x the shards1
# rate — the control plane synchronizes at every congestion epoch on
# top of the lookahead barriers, so its scaling bar sits below the
# data plane's 2.5x. On fewer cores the check is loud-skipped exactly
# like e20's.
CTRL1_BASE=$(json_field BENCH_shards.json control_events_per_sec 1)
CTRL1_SMOKE=$(json_field BENCH_shards.smoke.json control_events_per_sec 1)
if [ -z "$CTRL1_BASE" ] || [ -z "$CTRL1_SMOKE" ]; then
    echo "bench_guard.sh: could not parse ctrl_shards1 control_events_per_sec" >&2
    exit 1
fi
CTRL_FLOOR=$(awk -v b="$CTRL1_BASE" -v t="$TOLERANCE" 'BEGIN { printf "%d", b * (100 - t) / 100 }')
echo "bench_guard: smoke ctrl_shards1 $CTRL1_SMOKE vs floor $CTRL_FLOOR (committed $CTRL1_BASE, -$TOLERANCE%)"
if [ "$CTRL1_SMOKE" -lt "$CTRL_FLOOR" ]; then
    echo "bench_guard: REGRESSION — ctrl_shards1 events/sec $CTRL1_SMOKE below floor $CTRL_FLOOR" >&2
    exit 1
fi

CTRL_GATE_SKIPPED=$(json_field BENCH_shards.smoke.json control_scaling_gate_skipped 1)
if [ -z "$CTRL_GATE_SKIPPED" ]; then
    echo "bench_guard.sh: no control_scaling_gate_skipped marker in BENCH_shards.smoke.json" >&2
    exit 1
fi
if [ -n "$HOST_CORES" ] && [ "$HOST_CORES" -ge 4 ]; then
    if [ "$CTRL_GATE_SKIPPED" -ne 0 ]; then
        echo "bench_guard: BENCH_shards.smoke.json claims the control scaling gate was skipped on a $HOST_CORES-core host" >&2
        exit 1
    fi
    CTRL_SPEEDUP=$(json_field BENCH_shards.smoke.json control_speedup_4v1 1)
    CTRL_SCALE_OK=$(awk -v s="$CTRL_SPEEDUP" 'BEGIN { print (s >= 1.8) ? 1 : 0 }')
    echo "bench_guard: ctrl_shards4 speedup ${CTRL_SPEEDUP}x on $HOST_CORES cores (floor 1.8x)"
    if [ "$CTRL_SCALE_OK" != "1" ]; then
        echo "bench_guard: REGRESSION — control-plane speedup ${CTRL_SPEEDUP}x below 1.8x on a $HOST_CORES-core host" >&2
        exit 1
    fi
else
    echo "bench_guard: ctrl_shards4 1.8x scaling gate SKIPPED (host_cores=${HOST_CORES:-?}, needs >=4; marker recorded in BENCH_shards.smoke.json)"
fi

# Tiered-cache floor: the alpha=1.0 lane of the e21 bench must keep at
# least a 2x disk-time reduction over raw log reads. The lanes are
# virtual-time, so this floor is hardware-independent — no tolerance.
CACHE_REDUCTION=$(json_field BENCH_cache.smoke.json io_reduction_alpha1 1)
if [ -z "$CACHE_REDUCTION" ]; then
    echo "bench_guard.sh: could not parse io_reduction_alpha1 from BENCH_cache.smoke.json" >&2
    exit 1
fi
CACHE_OK=$(awk -v s="$CACHE_REDUCTION" 'BEGIN { print (s >= 2.0) ? 1 : 0 }')
echo "bench_guard: tiered cache disk-time reduction ${CACHE_REDUCTION}x at alpha 1.0 (floor 2.0x)"
if [ "$CACHE_OK" != "1" ]; then
    echo "bench_guard: REGRESSION — cache reduction ${CACHE_REDUCTION}x below 2.0x at alpha 1.0" >&2
    exit 1
fi
echo "bench_guard: OK"
