#!/usr/bin/env sh
# The hostile-input gauntlet: runs the fuzz-and-fault fronts from
# crates/hostile against fixed seeds. Any oracle violation panics with a
# one-line (seed, front, step) triple; reproduce it with
#   cargo run --release -p pegasus-hostile --bin fuzz-gauntlet -- \
#       --front <front> --seed <seed>
# and see docs/HARDENING.md for how to narrow to the single step.
#
# Usage:
#   scripts/fuzz_gauntlet.sh --smoke   # CI budget, fixed seeds (~30 s):
#                                      #   wire   6000 streams (1-3
#                                      #          mutations each, >10k
#                                      #          total mutations)
#                                      #   signalling 300 random walks
#                                      #   disk   400 hostile images
#                                      #   crash  power cut at every
#                                      #          boundary of a 60-op run
#                                      #   storm  2 fresh-seed reruns
#                                      #   control 300 QoS-loop walks
#   scripts/fuzz_gauntlet.sh --deep    # 10x budgets, three seeds
set -eu
cd "$(dirname "$0")/.."

MODE="${1:---smoke}"

cargo build --release -p pegasus-hostile --bin fuzz-gauntlet
BIN=target/release/fuzz-gauntlet

case "$MODE" in
--smoke)
    # Fixed seeds so CI failures are immediately reproducible; two
    # seeds catch seed-shaped luck without blowing the budget.
    "$BIN" --seed 1994
    "$BIN" --seed 2026 --front wire
    "$BIN" --seed 2026 --front disk
    ;;
--deep)
    for SEED in 1994 2026 31337; do
        "$BIN" --seed "$SEED" --front wire --iters 60000
        "$BIN" --seed "$SEED" --front signalling --iters 3000
        "$BIN" --seed "$SEED" --front disk --iters 4000
        "$BIN" --seed "$SEED" --front crash --iters 150
        "$BIN" --seed "$SEED" --front storm --iters 5
        "$BIN" --seed "$SEED" --front control --iters 3000
    done
    ;;
*)
    echo "usage: scripts/fuzz_gauntlet.sh [--smoke|--deep]" >&2
    exit 2
    ;;
esac

echo "fuzz_gauntlet.sh: all fronts held ($MODE)"
