#!/usr/bin/env sh
# Test-count floor: runs the whole workspace suite and refuses to pass
# if the number of passing tests ever drops below the floor — a deleted
# test file or a silently skipped crate cannot slip through as "all
# green". Raise the floor when the suite legitimately grows.
set -eu
cd "$(dirname "$0")/.."

FLOOR=616

OUT=$(mktemp)
trap 'rm -f "$OUT"' EXIT

# A test failure fails this script directly (plain `sh` has no
# pipefail, so capture to a file rather than pipe); the floor below
# guards against the quieter failure mode of tests disappearing.
if ! cargo test -q >"$OUT" 2>&1; then
    cat "$OUT"
    echo "test_floor.sh: test failures reported above" >&2
    exit 1
fi
cat "$OUT"

TOTAL=$(awk '/^test result: ok\./ { sub(/^test result: ok\. /, ""); s += $1 } END { print s + 0 }' "$OUT")
if [ "$TOTAL" -lt "$FLOOR" ]; then
    echo "test_floor.sh: suite shrank to $TOTAL passing tests (floor $FLOOR)" >&2
    exit 1
fi
echo "test_floor.sh: $TOTAL tests passed (floor $FLOOR)"
